// Package ckpt is the checkpoint/recovery subsystem: aligned-barrier
// checkpointing in the style the paper inherits from Flink (Chandy-Lamport
// with pipeline-injected barriers), adapted to the flow runtime.
//
// # Checkpoint protocol
//
// The driver assigns a monotonically increasing id to each checkpoint and
// injects a barrier message for that id at the pipeline source, between two
// snapshots of the trajectory stream. Barriers travel the same edges as
// records (FIFO per edge), so the set of records ahead of a barrier is
// exactly the stream prefix the checkpoint covers. Each subtask aligns the
// barrier across its input senders — input from senders whose barrier
// already arrived is buffered until the rest catch up — takes a state
// snapshot at the aligned point, acknowledges it to the Coordinator, and
// forwards the barrier downstream. A checkpoint is therefore a consistent
// cut: every acknowledged state reflects precisely the records derived from
// the source prefix, no more, no less.
//
// The Coordinator collects one ack per subtask (the alignment and snapshot
// mechanics live in internal/flow; operators implement Snapshotter). When
// every subtask has acked, the state blobs and a Manifest recording the
// replayable source position are committed to a Store; the manifest write
// is the checkpoint's atomic commit point. On recovery the driver loads the
// latest committed manifest, restores each subtask's state before it
// processes any input, and re-feeds the source from the recorded position.
//
// # Output commit
//
// Completion also gates exactly-once output: the driver withholds sink
// output emitted after the previous cut until the covering checkpoint is
// durable (see core.Config.OnCommit), so a crash never publishes output
// that a resumed run would derive again.
//
// # Asynchronous and incremental checkpoints
//
// Two optional refinements take snapshot work off the hot path. With async
// snapshots (flow.Config.AsyncSnapshots) the barrier handler only captures
// operator state; blob assembly and the coordinator ack run on a background
// goroutine, and the commit simply lands when the last deferred ack does.
// With delta checkpoints the driver injects barriers carrying a completed
// base id, operators implementing DeltaSnapshotter persist only the key
// groups dirtied since that base, and the manifest records the resulting
// delta chain (base first). Restore replays the chain in order: full blobs
// replace a subtask's state wholesale, delta blobs overwrite their dirty
// groups and delete tombstoned ones. Chains never span a process restart —
// the first checkpoint of a resumed job is always full — so every element
// of one chain shares the topology, and rescaling only ever re-shards
// merged full state.
package ckpt

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/model"
)

// Snapshotter is implemented by operators with keyed state that must
// survive a crash. SnapshotState serializes the operator's complete state
// at an aligned barrier; RestoreState reconstructs it in a freshly built
// operator before any post-cut input is processed. An operator whose state
// is empty should return a nil/empty blob; restore is skipped for empty
// blobs. Stateless operators implement both as no-ops, which documents that
// their omission from a checkpoint is deliberate rather than an oversight.
//
// A plain Snapshotter's state is subtask-scoped: it restores only into a
// topology with the same parallelism. Operators whose state should survive
// a rescale implement GroupSnapshotter instead.
type Snapshotter interface {
	SnapshotState() ([]byte, error)
	RestoreState(data []byte) error
}

// GroupSnapshotter is the rescalable form of Snapshotter: keyed state is
// emitted as one blob per key group — group(key) is the pipeline's
// key→group mapping, identical to the exchange routing — and restore
// merges any number of group blobs into a freshly built operator. Because
// key groups are parallelism-independent, a checkpoint taken at
// parallelism p restores at any parallelism p' ≤ MaxParallelism: each new
// subtask receives exactly the groups in its range, re-sliced from the old
// subtask blobs (see Reshard). Groups with no state are omitted from the
// returned map; RestoreGroup is called once per non-empty group blob,
// before any input is processed.
type GroupSnapshotter interface {
	SnapshotGroups(group func(key uint64) int) (map[int][]byte, error)
	RestoreGroup(data []byte) error
}

// DeltaSnapshotter is the incremental form of GroupSnapshotter: operators
// that track which routing keys they dirtied (see DirtyTracker) can cut
// checkpoints holding only the key groups changed since a completed base
// checkpoint. CaptureGroups runs synchronously at the aligned barrier for
// checkpoint id. With delta unset it returns the operator's full state,
// exactly like SnapshotGroups, with nil dropped. With delta set it returns
// a replacement frame for every key group holding changes not covered by
// checkpoint base — re-encoding all live state of a dirty group, not just
// the changed part, since delta frames replace their group wholesale on
// replay — and lists dirty groups left with no live state in dropped
// (tombstones). The returned frames must not alias mutable operator state:
// with async snapshots, encoding happens after the operator resumes.
//
// Restore is unchanged: the coordinator merges the delta chain into full
// per-group state before RestoreGroup runs, so operators never see deltas
// on the way back in.
type DeltaSnapshotter interface {
	GroupSnapshotter
	CaptureGroups(group func(key uint64) int, id, base uint64, delta bool) (frames map[int][]byte, dropped []int, err error)
}

// DirtyTracker implements the bookkeeping behind DeltaSnapshotter: the
// operator calls Touch for every state change (creation, modification,
// deletion) under the change's routing key, and Capture at each cut to
// learn which key groups need re-encoding. Stamps are capture ids: a key
// touched after capture X carries stamp X, and a delta cut against base B
// includes every group holding a stamp >= B — such a change postdates
// capture B's cut and is therefore absent from the restore baseline.
//
// Touches are folded from per-key stamps into per-group stamps at each
// capture (when the key→group mapping is available), so steady-state
// memory is one stamp per touched key group plus the keys touched since
// the last cut. Before the first capture the tracker stays disarmed and
// Touch is a no-op: a job's first checkpoint is always full, and with
// checkpointing disabled the tracker then costs nothing.
type DirtyTracker struct {
	keys    map[uint64]uint64 // routing key -> stamp, touches since the last capture
	groups  map[int]uint64    // key group -> stamp, folded at captures
	lastCap uint64            // highest capture id taken
	armed   bool
}

// NewDirtyTracker returns a disarmed tracker (armed by the first Capture).
func NewDirtyTracker() *DirtyTracker {
	return &DirtyTracker{keys: make(map[uint64]uint64), groups: make(map[int]uint64)}
}

// Touch records a state change under the given routing key. Call it for
// deletions too: a group whose last key disappeared must be tombstoned at
// the next delta cut.
func (t *DirtyTracker) Touch(key uint64) {
	if !t.armed {
		return
	}
	t.keys[key] = t.lastCap
}

// Capture opens the cut for checkpoint id: pending touches are folded into
// per-group stamps and the tracker arms for the touches that follow. For a
// delta cut it returns the key groups dirtied since checkpoint base — the
// caller re-encodes every live unit of each returned group and tombstones
// the ones left empty. For a full cut (delta unset) it returns nil.
// Capture relies on the driver's guarantee that the bases of successive
// delta cuts never decrease (they are completed checkpoint ids).
func (t *DirtyTracker) Capture(group func(key uint64) int, id, base uint64, delta bool) map[int]bool {
	for k, s := range t.keys {
		if g := group(k); s > t.groups[g] {
			t.groups[g] = s
		}
	}
	clear(t.keys)
	t.armed = true
	if id > t.lastCap {
		t.lastCap = id
	}
	if !delta {
		return nil
	}
	dirty := make(map[int]bool)
	for g, s := range t.groups {
		if s >= base {
			dirty[g] = true
		}
	}
	return dirty
}

// SourcePosition is the replayable source offset of a checkpoint cut: the
// barrier for the checkpoint was injected immediately after this many
// snapshots, the last of which carried LastTick. Resume re-feeds the stream
// starting at the first snapshot with tick > LastTick.
//
// Jobs with a partitioned source layer instead record one PartitionPosition
// per source partition: the cut falls at a different offset in every shard
// (partitions consume at independent rates), so resume replays each shard
// from its own offset. Snapshots then counts source records and LastTick is
// the highest tick fed to any partition.
type SourcePosition struct {
	// Snapshots is the number of source units (snapshots, or records with a
	// partitioned source) fed before the cut.
	Snapshots int64 `json:"snapshots"`
	// LastTick is the tick of the last snapshot inside the cut (partitioned
	// source: the highest record tick fed before the cut).
	LastTick model.Tick `json:"last_tick"`
	// Partitions, when the job runs a partitioned source layer, is each
	// source partition's replay offset at the cut, indexed by partition.
	Partitions []PartitionPosition `json:"partitions,omitempty"`
}

// PartitionPosition is one source partition's replay offset: how many of
// the shard's records were fed before the cut, and the highest tick among
// them. A driver replaying a deterministic stream skips the first Records
// records of each shard; non-deterministic feeds (multiple network
// publishers) replay everything and rely on the restored source-partition
// state to drop records the checkpoint already absorbed.
type PartitionPosition struct {
	// Records is the number of the shard's records fed before the cut.
	Records int64 `json:"records"`
	// LastTick is the highest tick fed to this partition before the cut
	// (model.NoLastTime for a partition that never received a record).
	LastTick model.Tick `json:"last_tick"`
}

// StageInfo describes one pipeline stage inside a manifest, so recovery can
// verify the restored topology is compatible with the checkpointed one.
type StageInfo struct {
	Name        string `json:"name"`
	Parallelism int    `json:"parallelism"`
	// Ranges[s] is the half-open key-group range [start, end) whose state
	// subtask s's blob covers (filled from the job's MaxParallelism when
	// the manifest is committed). Reshard cross-checks every decoded group
	// frame against it, so a blob that disagrees with its manifest fails
	// the resume instead of restoring keys into the wrong buckets.
	Ranges [][2]int `json:"ranges,omitempty"`
}

// Manifest is the commit record of one completed checkpoint. Its presence
// in the Store marks the checkpoint complete; state blobs without a
// manifest belong to an in-flight or aborted checkpoint and are ignored.
type Manifest struct {
	// ID is the checkpoint id (monotonically increasing within a job).
	ID uint64 `json:"id"`
	// Source is the replayable source position of the cut.
	Source SourcePosition `json:"source"`
	// MaxParallelism is the key-group count the state blobs are bucketed
	// by. A resuming job must use the same value (the key→group mapping is
	// the state's address space), but may use any per-stage parallelism up
	// to it. 0 marks a legacy manifest whose blobs are subtask-scoped.
	MaxParallelism int `json:"max_parallelism,omitempty"`
	// Stages records the topology the states were taken from.
	Stages []StageInfo `json:"stages"`
	// Spec is the application's configuration fingerprint (opaque to this
	// package; internal/core stores its encoded fingerprint). Resume
	// validates it so checkpointed state is never restored into a job with
	// different semantics (e.g. another enumeration method). Deployment
	// knobs like parallelism are deliberately absent from it.
	Spec []byte `json:"spec,omitempty"`
	// Delta marks an incremental checkpoint: its blobs hold only the key
	// groups dirtied since checkpoint Parent, and restoring it means
	// replaying Chain in order.
	Delta bool `json:"delta,omitempty"`
	// Parent is the completed base checkpoint a delta checkpoint was cut
	// against (0 for a full checkpoint).
	Parent uint64 `json:"parent,omitempty"`
	// Chain is the replay chain of a delta checkpoint: every checkpoint id
	// from the full base through this one, oldest first. It is filled by
	// the store at commit (the store owns chain bookkeeping, because its
	// background compaction later folds chains into new bases and rewrites
	// the manifests it shortens). Empty for a full checkpoint.
	Chain []uint64 `json:"chain,omitempty"`
}

// Validate checks a manifest against the topology a resuming job built:
// same stages in the same order, same max parallelism (the state's
// address space), and every new parallelism within it. The per-stage
// parallelism itself may differ — that is the rescale path; Reshard
// re-slices the blobs. Legacy manifests (MaxParallelism 0) require the
// exact parallelism that took them.
func (m *Manifest) Validate(stages []StageInfo, maxParallelism int) error {
	if len(m.Stages) != len(stages) {
		return fmt.Errorf("ckpt: manifest has %d stages, topology has %d",
			len(m.Stages), len(stages))
	}
	if m.MaxParallelism != 0 && m.MaxParallelism != maxParallelism {
		return fmt.Errorf("ckpt: manifest max parallelism %d, topology uses %d (the key→group mapping would change)",
			m.MaxParallelism, maxParallelism)
	}
	for i, st := range stages {
		old := m.Stages[i]
		if old.Name != st.Name {
			return fmt.Errorf("ckpt: manifest stage %d is %q, topology built %q",
				i, old.Name, st.Name)
		}
		if st.Parallelism < 1 {
			return fmt.Errorf("ckpt: stage %q parallelism %d", st.Name, st.Parallelism)
		}
		if m.MaxParallelism == 0 {
			if old.Parallelism != st.Parallelism {
				return fmt.Errorf("ckpt: legacy manifest stage %q has parallelism %d, topology built %d (rescale needs key-group state)",
					st.Name, old.Parallelism, st.Parallelism)
			}
			continue
		}
		if st.Parallelism > m.MaxParallelism {
			return fmt.Errorf("ckpt: stage %q parallelism %d exceeds checkpoint max parallelism %d",
				st.Name, st.Parallelism, m.MaxParallelism)
		}
	}
	return nil
}

// Store persists checkpoint state. Implementations must make Commit atomic:
// a manifest is either fully readable afterwards or absent, never torn.
// Put may be called concurrently for different (stage, subtask) pairs of
// one checkpoint.
type Store interface {
	// Put writes one subtask's state blob for an in-flight checkpoint.
	Put(id uint64, stage string, subtask int, state []byte) error
	// Commit atomically publishes the manifest, completing the checkpoint,
	// and may garbage-collect older checkpoints.
	Commit(m Manifest) error
	// Latest returns the most recent committed manifest, or nil when the
	// store holds no completed checkpoint.
	Latest() (*Manifest, error)
	// State reads one subtask's blob from a committed checkpoint.
	State(id uint64, stage string, subtask int) ([]byte, error)
}

// BaseRetainer is an optional Store extension for delta checkpoints: the
// coordinator pins an in-flight delta's base so retention cannot collect
// it (or any element of its chain) while the delta still needs it — a
// base that completed several commits ago would otherwise age out before
// the delta referencing it becomes durable. Retain/Release calls nest.
type BaseRetainer interface {
	RetainBase(id uint64)
	ReleaseBase(id uint64)
}

// Coordinator tracks in-flight checkpoints for one job: the driver calls
// Begin when it injects a barrier, subtask acks arrive via Ack (locally
// from the flow runtime, or forwarded over the tcpnet control plane), and
// when every subtask of every stage has acked, the manifest is committed
// and OnComplete fires. A failed snapshot aborts the checkpoint: the run
// continues and the next interval tries again, exactly like Flink's
// tolerable checkpoint failures.
type Coordinator struct {
	store  Store
	stages []StageInfo
	expect int

	// OnComplete, when set before the first Begin, observes every committed
	// manifest (the driver uses it to release withheld sink output). Called
	// from the goroutine delivering the final ack.
	OnComplete func(Manifest)
	// Spec, when set before the first Begin, is stamped into every
	// committed manifest (see Manifest.Spec).
	Spec []byte
	// MaxParallelism, when set before the first Begin, is stamped into
	// every committed manifest along with the per-blob key-group ranges it
	// implies (see Manifest.MaxParallelism). 0 writes legacy subtask-scoped
	// manifests.
	MaxParallelism int
	// Stats, when non-nil, accrues checkpoint observability counters
	// (state upload time, full/delta cut mix).
	Stats *metrics.CheckpointStats
	// Logf reports aborted checkpoints (default log-free: silent).
	Logf func(format string, args ...any)

	mu       sync.Mutex
	inflight map[uint64]*inflight
	lastDone uint64
	haveDone bool
}

type inflight struct {
	src    SourcePosition
	base   uint64              // completed base checkpoint id (delta only)
	delta  bool                // incremental cut
	seen   map[[2]int]struct{} // (stage, subtask) pairs received (dedup)
	stored int                 // acks whose state write has completed
	failed bool
}

// NewCoordinator builds a coordinator for one job's topology.
func NewCoordinator(store Store, stages []StageInfo) (*Coordinator, error) {
	if store == nil {
		return nil, fmt.Errorf("ckpt: nil store")
	}
	expect := 0
	for _, st := range stages {
		if st.Name == "" || st.Parallelism < 1 {
			return nil, fmt.Errorf("ckpt: bad stage %+v", st)
		}
		expect += st.Parallelism
	}
	if expect == 0 {
		return nil, fmt.Errorf("ckpt: no stages")
	}
	return &Coordinator{
		store:    store,
		stages:   stages,
		expect:   expect,
		inflight: make(map[uint64]*inflight),
	}, nil
}

// Stages returns the topology the coordinator expects acks for.
func (c *Coordinator) Stages() []StageInfo { return c.stages }

// Begin opens checkpoint id at the given source position. The driver calls
// it immediately before injecting the barrier, so acks can never race an
// unknown id. For an incremental checkpoint (delta set) base must be a
// checkpoint this coordinator instance committed; Begin pins it against
// store retention until the delta commits or aborts. Bases of successive
// deltas never decrease (they are completed ids), which is what lets
// operators prune their dirtiness bookkeeping.
func (c *Coordinator) Begin(id uint64, src SourcePosition, base uint64, delta bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.inflight[id]; dup {
		return fmt.Errorf("ckpt: checkpoint %d already in flight", id)
	}
	if c.haveDone && id <= c.lastDone {
		return fmt.Errorf("ckpt: checkpoint id %d not after last completed %d", id, c.lastDone)
	}
	if delta && (!c.haveDone || base > c.lastDone) {
		return fmt.Errorf("ckpt: delta checkpoint %d against uncommitted base %d", id, base)
	}
	if delta {
		if br, ok := c.store.(BaseRetainer); ok {
			br.RetainBase(base)
		}
	}
	c.inflight[id] = &inflight{src: src, base: base, delta: delta, seen: make(map[[2]int]struct{}, c.expect)}
	return nil
}

// releaseBase undoes Begin's retention pin once the delta's fate is known.
func (c *Coordinator) releaseBase(fl *inflight) {
	if !fl.delta {
		return
	}
	if br, ok := c.store.(BaseRetainer); ok {
		br.ReleaseBase(fl.base)
	}
}

// Ack records one subtask's snapshot for checkpoint id. stage indexes the
// coordinator's stage list; snapErr is the subtask's snapshot failure, if
// any (which aborts the checkpoint). Acks for unknown ids (aborted, or
// from before a driver restart) are dropped.
func (c *Coordinator) Ack(id uint64, stage, subtask int, state []byte, snapErr error) {
	c.mu.Lock()
	fl := c.inflight[id]
	if fl == nil {
		c.mu.Unlock()
		return
	}
	if stage < 0 || stage >= len(c.stages) ||
		subtask < 0 || subtask >= c.stages[stage].Parallelism {
		c.abortLocked(id, fl, fmt.Errorf("ack for unknown subtask %d/%d", stage, subtask))
		c.mu.Unlock()
		return
	}
	// Completion needs one ack per distinct subtask: a duplicated control
	// frame must not let a checkpoint commit with another subtask's state
	// missing.
	if _, dup := fl.seen[[2]int{stage, subtask}]; dup {
		c.mu.Unlock()
		return
	}
	fl.seen[[2]int{stage, subtask}] = struct{}{}
	name := c.stages[stage].Name
	if snapErr != nil {
		c.abortLocked(id, fl, fmt.Errorf("stage %s subtask %d: %w", name, subtask, snapErr))
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	// The blob write happens outside the lock: stores may hit disk.
	t0 := time.Now()
	err := c.store.Put(id, name, subtask, state)
	c.Stats.AddUpload(time.Since(t0))
	if err != nil {
		c.mu.Lock()
		c.abortLocked(id, fl, err)
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	if c.inflight[id] != fl { // aborted meanwhile
		c.mu.Unlock()
		return
	}
	// Count completion only AFTER this ack's state write finished: a
	// not-yet-written blob must never be committable, so the final ack's
	// commit cannot race an earlier ack's in-flight Put.
	fl.stored++
	if fl.stored < c.expect || fl.failed {
		c.mu.Unlock()
		return
	}
	delete(c.inflight, id)
	if c.haveDone && id < c.lastDone {
		// A newer checkpoint is already durable (acks are asynchronous, so
		// completion order can invert): this one is superseded — recovery
		// always resumes from the latest cut — and committing it would only
		// risk shadowing newer state. Drop it.
		newer := c.lastDone
		c.releaseBase(fl)
		c.mu.Unlock()
		c.logf("ckpt: checkpoint %d superseded by %d, dropped", id, newer)
		return
	}
	m := Manifest{
		ID: id, Source: fl.src, Spec: c.Spec,
		MaxParallelism: c.MaxParallelism,
		Stages:         manifestStages(c.stages, c.MaxParallelism),
		Delta:          fl.delta,
	}
	if fl.delta {
		m.Parent = fl.base
	}
	done := c.OnComplete
	c.mu.Unlock()
	t1 := time.Now()
	err = c.store.Commit(m)
	c.Stats.AddUpload(time.Since(t1))
	c.mu.Lock()
	c.releaseBase(fl)
	c.mu.Unlock()
	if err != nil {
		c.logf("ckpt: checkpoint %d commit: %v", id, err)
		return
	}
	c.Stats.CountCut(fl.delta)
	c.mu.Lock()
	if !c.haveDone || id > c.lastDone {
		c.lastDone, c.haveDone = id, true
	}
	c.mu.Unlock()
	if done != nil {
		done(m)
	}
}

// Completed returns the highest checkpoint id committed by this
// coordinator instance (ok is false before the first completion).
func (c *Coordinator) Completed() (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastDone, c.haveDone
}

// abortLocked drops an in-flight checkpoint; later acks for it are ignored.
func (c *Coordinator) abortLocked(id uint64, fl *inflight, err error) {
	fl.failed = true
	delete(c.inflight, id)
	c.releaseBase(fl)
	c.logf("ckpt: checkpoint %d aborted: %v", id, err)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// BulkStateReader is an optional Store extension: stores whose blobs live
// in one container per checkpoint (DirStore's framed state file) expose a
// single-read bulk load so restoring S stages x P subtasks does not
// re-read and re-scan the container S*P times.
type BulkStateReader interface {
	// States returns every subtask blob of a committed checkpoint, keyed
	// by StateKey.
	States(id uint64) (map[string][]byte, error)
}

// readStates loads every subtask blob of one committed checkpoint, keyed
// by StateKey, using the store's bulk reader when it has one.
func readStates(store Store, id uint64, stages []StageInfo) (map[string][]byte, error) {
	if bulk, ok := store.(BulkStateReader); ok {
		return bulk.States(id)
	}
	out := make(map[string][]byte)
	for _, st := range stages {
		for sub := 0; sub < st.Parallelism; sub++ {
			blob, err := store.State(id, st.Name, sub)
			if err != nil {
				return nil, err
			}
			out[StateKey(st.Name, sub)] = blob
		}
	}
	return out, nil
}

// AllStates loads every subtask's full state of a committed checkpoint,
// keyed by StateKey. For a delta checkpoint it replays the manifest's
// chain oldest-first, merging each element into the accumulated state:
// full blobs (StateGroups/StateRaw) replace a subtask's state wholesale —
// a tag-only blob replaces it with explicitly empty state — and delta
// blobs overwrite their dirty groups and delete tombstoned ones. The
// result holds only full-format blobs, so Reshard and restore never see
// deltas. Every element of one chain shares the manifest's topology
// (chains never span restarts).
func AllStates(store Store, m *Manifest) (map[string][]byte, error) {
	if !m.Delta {
		states, err := readStates(store, m.ID, m.Stages)
		if err != nil {
			return nil, err
		}
		for key, blob := range states {
			if len(blob) == 1 { // explicit-empty marker (compacted chains)
				delete(states, key)
			}
		}
		return states, nil
	}
	if len(m.Chain) == 0 {
		return nil, fmt.Errorf("ckpt: checkpoint %d is incremental but its manifest records no delta chain (store without chain support?)", m.ID)
	}
	if m.Chain[len(m.Chain)-1] != m.ID {
		return nil, fmt.Errorf("ckpt: checkpoint %d delta chain %v does not end at itself", m.ID, m.Chain)
	}
	states, err := mergeChainStates(func(cid uint64) (map[string][]byte, error) {
		return readStates(store, cid, m.Stages)
	}, m.Chain)
	if err != nil {
		return nil, fmt.Errorf("ckpt: checkpoint %d: %w", m.ID, err)
	}
	for key, blob := range states {
		if len(blob) == 1 { // explicit-empty marker: no state to restore
			delete(states, key)
		}
	}
	return states, nil
}

// mergeChainStates replays a delta chain oldest-first, merging every
// element into accumulated per-subtask state, and returns full-format
// blobs keyed by StateKey. A key that appeared somewhere in the chain but
// whose merged state is empty comes back as a tag-only explicit-empty
// blob rather than being omitted: DirStore compaction persists those
// markers so that replaying a chain whose tail was already compacted (the
// crash window between compaction's state write and its manifest rewrite)
// replaces stale accumulated state with emptiness instead of keeping it.
// Callers restoring state filter the one-byte markers out.
func mergeChainStates(read func(id uint64) (map[string][]byte, error), chain []uint64) (map[string][]byte, error) {
	groupsBy := make(map[string]map[int][]byte) // StateKey -> group -> frame
	raws := make(map[string][]byte)             // StateKey -> raw payload (may be empty)
	for _, cid := range chain {
		states, err := read(cid)
		if err != nil {
			return nil, fmt.Errorf("chain element %d: %w", cid, err)
		}
		for key, blob := range states {
			if len(blob) == 0 {
				continue // absent in this cut: unchanged since the previous element
			}
			switch blob[0] {
			case flow.StateGroups:
				gs, err := flow.DecodeGroupStates(blob)
				if err != nil {
					return nil, fmt.Errorf("chain element %d state %s: %w", cid, key, err)
				}
				g := make(map[int][]byte, len(gs))
				for _, f := range gs {
					g[f.Group] = f.Data
				}
				groupsBy[key] = g
				delete(raws, key)
			case flow.StateRaw:
				raws[key] = blob[1:]
				delete(groupsBy, key)
			case flow.StateGroupDeltas:
				frames, dropped, err := flow.DecodeGroupDeltas(blob)
				if err != nil {
					return nil, fmt.Errorf("chain element %d state %s: %w", cid, key, err)
				}
				g := groupsBy[key]
				if g == nil {
					g = make(map[int][]byte)
					groupsBy[key] = g
				}
				for _, d := range dropped {
					delete(g, d)
				}
				for _, f := range frames {
					g[f.Group] = f.Data
				}
			default:
				return nil, fmt.Errorf("chain element %d state %s: unknown state format %d", cid, key, blob[0])
			}
		}
	}
	out := make(map[string][]byte, len(groupsBy)+len(raws))
	for key, g := range groupsBy {
		blob := flow.EncodeGroupStates(g)
		if len(blob) == 0 {
			blob = []byte{flow.StateGroups} // explicit-empty marker
		}
		out[key] = blob
	}
	for key, raw := range raws {
		blob := flow.EncodeRawState(raw)
		if len(blob) == 0 {
			blob = []byte{flow.StateRaw} // explicit-empty marker
		}
		out[key] = blob
	}
	return out, nil
}

// manifestStages annotates stage descriptors with the key-group range each
// subtask blob covers (nil ranges for legacy subtask-scoped manifests).
func manifestStages(stages []StageInfo, maxParallelism int) []StageInfo {
	if maxParallelism <= 0 {
		return stages
	}
	out := make([]StageInfo, len(stages))
	for i, st := range stages {
		st.Ranges = make([][2]int, st.Parallelism)
		for s := 0; s < st.Parallelism; s++ {
			start, end := flow.KeyGroupRange(maxParallelism, st.Parallelism, s)
			st.Ranges[s] = [2]int{start, end}
		}
		out[i] = st
	}
	return out
}

// Reshard re-slices a checkpoint's subtask state blobs onto a new
// per-stage parallelism. target lists the resuming topology's stages
// (same names and order as the manifest; validate with Manifest.Validate
// first). Stages whose parallelism is unchanged pass their blobs through
// untouched; a changed parallelism requires every non-empty blob of that
// stage to be key-group framed — the per-group frames from all old
// subtasks are re-bucketed so the blob for new subtask s holds exactly
// the groups in KeyGroupRange(max, newParallelism, s). The result is
// keyed by StateKey over the NEW subtask indices; empty blobs are
// omitted.
func Reshard(states map[string][]byte, m *Manifest, target []StageInfo) (map[string][]byte, error) {
	out := make(map[string][]byte, len(states))
	for i, old := range m.Stages {
		nt := target[i]
		if nt.Parallelism == old.Parallelism {
			for s := 0; s < old.Parallelism; s++ {
				if blob := states[StateKey(old.Name, s)]; len(blob) > 0 {
					out[StateKey(old.Name, s)] = blob
				}
			}
			continue
		}
		if m.MaxParallelism <= 0 {
			return nil, fmt.Errorf("ckpt: stage %q cannot rescale %d -> %d: legacy subtask-scoped checkpoint",
				old.Name, old.Parallelism, nt.Parallelism)
		}
		perSub := make(map[int]map[int][]byte) // new subtask -> group -> blob
		for s := 0; s < old.Parallelism; s++ {
			blob := states[StateKey(old.Name, s)]
			if len(blob) == 0 {
				continue
			}
			groups, err := flow.DecodeGroupStates(blob)
			if err != nil {
				return nil, fmt.Errorf("ckpt: stage %q subtask %d cannot rescale %d -> %d: %w",
					old.Name, s, old.Parallelism, nt.Parallelism, err)
			}
			for _, g := range groups {
				if g.Group < 0 || g.Group >= m.MaxParallelism {
					return nil, fmt.Errorf("ckpt: stage %q subtask %d: key group %d outside [0, %d)",
						old.Name, s, g.Group, m.MaxParallelism)
				}
				// The manifest records the range each blob covers; a frame
				// outside it means the blob and the manifest disagree
				// (corruption, or a drifted range assignment) — refuse
				// rather than restore keys into the wrong buckets.
				if s < len(old.Ranges) {
					if r := old.Ranges[s]; g.Group < r[0] || g.Group >= r[1] {
						return nil, fmt.Errorf("ckpt: stage %q subtask %d: key group %d outside its manifest range [%d, %d)",
							old.Name, s, g.Group, r[0], r[1])
					}
				}
				ns := flow.SubtaskForGroup(g.Group, m.MaxParallelism, nt.Parallelism)
				if perSub[ns] == nil {
					perSub[ns] = make(map[int][]byte)
				}
				perSub[ns][g.Group] = g.Data
			}
		}
		for ns, groups := range perSub {
			if blob := flow.EncodeGroupStates(groups); len(blob) > 0 {
				out[StateKey(old.Name, ns)] = blob
			}
		}
	}
	return out, nil
}

// RestoreFunc builds the (stage, subtask) -> state lookup a resuming
// pipeline installs (flow.Config.Restore), re-sliced onto the resuming
// topology's per-stage parallelism in target (which may differ from the
// manifest's — the elastic-rescale path). All blobs are loaded up front
// (one container read on bulk-capable stores), so an unreadable or
// un-reshardable checkpoint fails the resume at construction instead of
// silently starting a subtask empty.
func RestoreFunc(store Store, m *Manifest, target []StageInfo) (func(stage, subtask int) []byte, error) {
	states, err := AllStates(store, m)
	if err != nil {
		return nil, err
	}
	if states, err = Reshard(states, m, target); err != nil {
		return nil, err
	}
	return func(stage, subtask int) []byte {
		if stage < 0 || stage >= len(target) {
			return nil
		}
		return states[StateKey(target[stage].Name, subtask)]
	}, nil
}
