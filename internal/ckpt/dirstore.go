package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// DirStore is the local-directory Store backend. Layout:
//
//	<dir>/chk-<id>/STATE.bin        all subtask blobs, framed (written at commit)
//	<dir>/chk-<id>/STATE.pg         paged layout instead of STATE.bin (Paged mode)
//	<dir>/chk-<id>/STATE.full.bin   compacted full state of a delta chain (framed)
//	<dir>/chk-<id>/MANIFEST.json    commit record (written last)
//
// Put stages blobs in memory; the directory is touched only at Commit,
// which writes the framed state file and then renames the manifest into
// place. Batching every subtask's state into one file keeps the filesystem
// cost per checkpoint at two writes and one rename regardless of topology
// width — with per-blob files, checkpoint I/O dominated the measured
// overhead. The manifest rename is the atomic commit point: a checkpoint
// directory either contains a complete, readable manifest or none, and a
// crash mid-checkpoint leaves at most a state file without a manifest,
// which Latest ignores and the next Commit's garbage collection removes.
//
// In Paged mode, Put instead streams each blob into a PageFile as it
// arrives — fixed-size pages, free list, directory blob; see PageFile —
// and Commit only finalizes the file, so blob bytes never accumulate in
// memory. The manifest rename stays the commit point either way.
//
// STATE.bin framing, repeated per blob:
//
//	[stage len uvarint][stage bytes][subtask uvarint][blob len uvarint][blob]
//
// Retain controls how many completed checkpoints are kept (default 2; the
// previous one survives until its successor is durable).
//
// # Delta chains and compaction
//
// A delta checkpoint's manifest names its base (Manifest.Parent); the
// store owns the resulting chain bookkeeping: at Commit it stamps the full
// replay chain into the manifest, retention keeps every element of a
// retained (or pinned, see BaseRetainer) checkpoint's chain alive, and
// once the latest chain reaches CompactThreshold elements a background
// compaction folds it into a new full base — merging the chain's states
// into STATE.full.bin and rewriting the manifest with the chain cleared,
// both via tmp+rename so a kill at any instant leaves either the old
// chain or the new base readable, never a torn mix. Readers prefer
// STATE.full.bin over the original state file when both exist.
type DirStore struct {
	dir string
	// Retain is the number of most-recent completed checkpoints kept after
	// a Commit (minimum 1).
	Retain int
	// Paged switches Put to the paged STATE.pg layout: blobs stream to
	// fixed-size pages as acks arrive instead of staging in memory.
	Paged bool
	// CompactThreshold, when > 0, folds the latest checkpoint's delta
	// chain into a new full base in the background once the chain reaches
	// that many elements (0 disables compaction).
	CompactThreshold int
	// Stats, when non-nil, accrues chain-length observability counters.
	Stats *metrics.CheckpointStats
	// OnCompact, when non-nil, is notified after each background chain
	// compaction finishes: the folded checkpoint id, the chain length it
	// folded, and the error (nil on success). Called from the compaction
	// goroutine; implementations must be safe for concurrent use. The
	// observability layer feeds the structured event log from it without
	// this package importing it.
	OnCompact func(id uint64, chainLen int, err error)

	mu         sync.Mutex
	staging    map[uint64]map[string][]byte // in-flight blobs by id, then key
	paging     map[uint64]*PageFile         // in-flight page files by id (Paged mode)
	completed  []uint64                     // committed ids on disk, ascending
	committing map[uint64]struct{}          // ids with a Commit in progress
	chains     map[uint64][]uint64          // id -> replay chain, oldest first (self-only for full)
	pins       map[uint64]int               // BaseRetainer pin counts
	compacting bool                         // single-flight background compaction
	compactWG  sync.WaitGroup
}

// DefaultCompactThreshold is the chain length at which delta-checkpointing
// deployments fold chains into a new full base unless configured otherwise.
const DefaultCompactThreshold = 8

// NewDirStore creates (if needed) and opens a checkpoint directory. Stale
// attempts from a previous process (state without manifest, *.tmp files
// from an interrupted compaction) are swept once here; afterwards garbage
// collection works from in-memory bookkeeping so a commit never rescans
// the directory.
func NewDirStore(dir string) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("ckpt: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	s := &DirStore{
		dir: dir, Retain: 2,
		staging:    make(map[uint64]map[string][]byte),
		paging:     make(map[uint64]*PageFile),
		committing: make(map[uint64]struct{}),
		chains:     make(map[uint64][]uint64),
		pins:       make(map[uint64]int),
	}
	ids, err := s.list()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		m, err := s.readManifest(id)
		if err != nil {
			if os.IsNotExist(err) {
				os.RemoveAll(s.ckptDir(id))
				continue
			}
			return nil, fmt.Errorf("ckpt: %w", err)
		}
		s.completed = append(s.completed, id)
		if m.Delta && len(m.Chain) > 0 {
			s.chains[id] = m.Chain
		} else {
			s.chains[id] = []uint64{id}
		}
		if ents, err := os.ReadDir(s.ckptDir(id)); err == nil {
			for _, e := range ents {
				if strings.HasSuffix(e.Name(), ".tmp") {
					os.Remove(filepath.Join(s.ckptDir(id), e.Name()))
				}
			}
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) ckptDir(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("chk-%d", id))
}

const (
	manifestName  = "MANIFEST.json"
	stateName     = "STATE.bin"
	pageFileName  = "STATE.pg"
	fullStateName = "STATE.full.bin"
)

// StateKey is the canonical "stage/subtask" key for one subtask's state
// blob — the same string the tcpnet handshake restore map uses, so the
// writing and reading sides cannot drift.
func StateKey(stage string, subtask int) string {
	return stage + "/" + strconv.Itoa(subtask)
}

// Put implements Store: the blob is staged in memory until Commit, or
// streamed straight into the checkpoint's page file in Paged mode.
func (s *DirStore) Put(id uint64, stage string, subtask int, state []byte) error {
	s.mu.Lock()
	if !s.Paged {
		m := s.staging[id]
		if m == nil {
			m = make(map[string][]byte)
			s.staging[id] = m
		}
		m[StateKey(stage, subtask)] = state
		s.mu.Unlock()
		return nil
	}
	pf := s.paging[id]
	if pf == nil {
		dir := s.ckptDir(id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("ckpt: %w", err)
		}
		var err error
		if pf, err = CreatePageFile(filepath.Join(dir, pageFileName), 0); err != nil {
			s.mu.Unlock()
			return err
		}
		s.paging[id] = pf
	}
	s.mu.Unlock()
	return pf.Put(StateKey(stage, subtask), state)
}

// Commit implements Store: one state file (framed, or a finalized page
// file), then the atomic manifest rename, then garbage collection of
// checkpoints beyond the retention horizon (and of staged blobs from
// older, abandoned attempts). For a delta manifest, the full replay chain
// is computed from the parent's and stamped into the manifest before it
// lands; a chain reaching CompactThreshold triggers background
// compaction.
func (s *DirStore) Commit(m Manifest) error {
	chain, err := s.commitChain(&m)
	if err != nil {
		return err
	}
	s.mu.Lock()
	staged := s.staging[m.ID]
	pf := s.paging[m.ID]
	delete(s.paging, m.ID)
	// Drop this checkpoint's staging and anything older that never
	// committed (its barrier generation is gone for good).
	for id := range s.staging {
		if id <= m.ID {
			delete(s.staging, id)
		}
	}
	for id, old := range s.paging {
		if id < m.ID {
			old.Close()
			delete(s.paging, id)
			os.RemoveAll(s.ckptDir(id))
		}
	}
	// Mark the commit in progress: concurrent commits can push the
	// retention horizon past this id while its directory is still
	// manifest-less, and the orphan sweep must not mistake it for a crash
	// artifact mid-write.
	s.committing[m.ID] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.committing, m.ID)
		s.mu.Unlock()
	}()

	dir := s.ckptDir(m.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	// A failed attempt removes its directory again: a chk dir holding state
	// without a manifest is indistinguishable from a crash artifact and
	// would otherwise sit there until the orphan sweep catches it.
	if s.Paged {
		if pf == nil { // no subtask ever wrote state
			if pf, err = CreatePageFile(filepath.Join(dir, pageFileName), 0); err != nil {
				os.RemoveAll(dir)
				return err
			}
		}
		err := pf.Finalize()
		pf.Close()
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
	} else {
		if err := os.WriteFile(filepath.Join(dir, stateName), frameStates(staged), 0o644); err != nil {
			os.RemoveAll(dir)
			return fmt.Errorf("ckpt: %w", err)
		}
	}
	blob, err := json.Marshal(m)
	if err != nil {
		os.RemoveAll(dir)
		return fmt.Errorf("ckpt: manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		os.RemoveAll(dir)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		os.RemoveAll(dir)
		return fmt.Errorf("ckpt: %w", err)
	}
	s.mu.Lock()
	s.chains[m.ID] = chain
	s.mu.Unlock()
	s.Stats.SetChainLen(len(chain))
	s.gc(m.ID)
	s.maybeCompact(m.ID)
	return nil
}

// commitChain resolves the manifest's replay chain: a full checkpoint is
// its own chain (and its manifest records none); a delta checkpoint
// extends its parent's chain, which the manifest records in full so a
// reopened store — or a reader of the raw directory — needs no further
// bookkeeping to replay it.
func (s *DirStore) commitChain(m *Manifest) ([]uint64, error) {
	if !m.Delta {
		m.Chain = nil
		return []uint64{m.ID}, nil
	}
	s.mu.Lock()
	parent := s.chains[m.Parent]
	s.mu.Unlock()
	if parent == nil {
		// Reopened store: the parent's chain lives in its manifest.
		pm, err := s.readManifest(m.Parent)
		if err != nil {
			return nil, fmt.Errorf("ckpt: delta checkpoint %d: base %d: %w", m.ID, m.Parent, err)
		}
		if pm.Delta && len(pm.Chain) > 0 {
			parent = pm.Chain
		} else {
			parent = []uint64{m.Parent}
		}
	}
	chain := append(append(make([]uint64, 0, len(parent)+1), parent...), m.ID)
	m.Chain = chain
	return chain, nil
}

// frameStates serializes subtask blobs (keyed by StateKey) into the
// framed state-file format, sorted by key.
func frameStates(states map[string][]byte) []byte {
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var frame []byte
	for _, k := range keys {
		slash := strings.LastIndexByte(k, '/')
		stage, subStr := k[:slash], k[slash+1:]
		sub, _ := strconv.Atoi(subStr)
		frame = binary.AppendUvarint(frame, uint64(len(stage)))
		frame = append(frame, stage...)
		frame = binary.AppendUvarint(frame, uint64(sub))
		frame = binary.AppendUvarint(frame, uint64(len(states[k])))
		frame = append(frame, states[k]...)
	}
	return frame
}

// RetainBase implements BaseRetainer: garbage collection keeps a pinned
// checkpoint — and every element of its chain — on disk regardless of the
// retention count, for as long as pins are outstanding. Pins nest.
func (s *DirStore) RetainBase(id uint64) {
	s.mu.Lock()
	s.pins[id]++
	s.mu.Unlock()
}

// ReleaseBase implements BaseRetainer.
func (s *DirStore) ReleaseBase(id uint64) {
	s.mu.Lock()
	if s.pins[id] > 1 {
		s.pins[id]--
	} else {
		delete(s.pins, id)
	}
	s.mu.Unlock()
}

// gc records the new completion, removes checkpoints beyond the retention
// horizon (from in-memory bookkeeping), and sweeps orphaned directories: a
// crash between the state write and the manifest rename leaves a chk dir
// that will never gain a manifest. Retention is chain-aware: a checkpoint
// survives while it is one of the Retain most recent completions, an
// element of such a checkpoint's delta chain, or covered by a BaseRetainer
// pin — a delta's base must outlive every checkpoint that replays through
// it. A manifest-less directory with an id below the oldest kept
// checkpoint is an orphan, UNLESS a concurrent Commit for that id is still
// mid-write or its page file is still receiving Puts — the committing and
// paging sets exclude those. Without the sweep, orphans leak until the
// store is next reopened (and forever on a long-lived process). The sweep
// costs one ReadDir per commit, dwarfed by the state write itself.
// Removal failures are ignored: garbage collection must never fail a
// commit.
func (s *DirStore) gc(latest uint64) {
	retain := s.Retain
	if retain < 1 {
		retain = 1
	}
	s.mu.Lock()
	s.completed = append(s.completed, latest)
	// Retention is by id, not completion order: commits can land out of
	// order (acks are asynchronous), and the newest cut must survive.
	sort.Slice(s.completed, func(i, j int) bool { return s.completed[i] < s.completed[j] })
	keep := make(map[uint64]bool)
	first := len(s.completed) - retain
	if first < 0 {
		first = 0
	}
	for _, id := range s.completed[first:] {
		keep[id] = true
		for _, c := range s.chains[id] {
			keep[c] = true
		}
	}
	for id, n := range s.pins {
		if n <= 0 {
			continue
		}
		keep[id] = true
		for _, c := range s.chains[id] {
			keep[c] = true
		}
	}
	var drop []uint64
	kept := s.completed[:0]
	for _, id := range s.completed {
		if keep[id] {
			kept = append(kept, id)
		} else {
			drop = append(drop, id)
			delete(s.chains, id)
		}
	}
	s.completed = kept
	horizon := s.completed[0] // oldest kept completed id
	s.mu.Unlock()
	for _, id := range drop {
		os.RemoveAll(s.ckptDir(id))
	}
	if ids, err := s.list(); err == nil {
		for _, id := range ids {
			if id >= horizon || s.isCommitting(id) || s.isPaging(id) || s.hasManifest(id) {
				continue
			}
			os.RemoveAll(s.ckptDir(id))
		}
	}
}

func (s *DirStore) isCommitting(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, busy := s.committing[id]
	return busy
}

func (s *DirStore) isPaging(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, busy := s.paging[id]
	return busy
}

// maybeCompact starts a background compaction of checkpoint id's delta
// chain when it has grown to the configured threshold. Compactions are
// single-flight — a chain that keeps growing while one runs is picked up
// by a later commit — and the target is pinned so retention cannot
// collect chain elements mid-merge.
func (s *DirStore) maybeCompact(id uint64) {
	if s.CompactThreshold <= 0 {
		return
	}
	s.mu.Lock()
	chain := s.chains[id]
	if len(chain) < s.CompactThreshold || s.compacting {
		s.mu.Unlock()
		return
	}
	s.compacting = true
	s.pins[id]++
	chain = append([]uint64(nil), chain...)
	s.mu.Unlock()
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		// Compaction failure is tolerable by design: the chain stays
		// replayable as-is, so errors are dropped like gc's.
		err := s.compact(id, chain)
		if s.OnCompact != nil {
			s.OnCompact(id, len(chain), err)
		}
		s.mu.Lock()
		s.compacting = false
		if s.pins[id] > 1 {
			s.pins[id]--
		} else {
			delete(s.pins, id)
		}
		s.mu.Unlock()
	}()
}

// WaitCompaction blocks until no background chain compaction is in flight
// (tests, and orderly shutdown before removing the directory).
func (s *DirStore) WaitCompaction() { s.compactWG.Wait() }

// compact folds checkpoint id's delta chain into a new full base. The
// merged state lands as STATE.full.bin and the manifest is rewritten with
// the chain cleared, each via tmp+rename: a kill before the state rename
// changes nothing, a kill between the two leaves a full state file that
// readers already prefer while the manifest still replays the chain —
// equivalent, because the merge writes explicit-empty markers for keys
// the chain emptied (see mergeChainStates) — and a kill after the
// manifest rename completes the fold. The original chain files are left
// to normal retention.
func (s *DirStore) compact(id uint64, chain []uint64) error {
	merged, err := mergeChainStates(s.States, chain)
	if err != nil {
		return err
	}
	dir := s.ckptDir(id)
	tmp := filepath.Join(dir, fullStateName+".tmp")
	if err := os.WriteFile(tmp, frameStates(merged), 0o644); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, fullStateName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	m, err := s.readManifest(id)
	if err != nil {
		return fmt.Errorf("ckpt: compact chk-%d: %w", id, err)
	}
	m.Delta = false
	m.Parent = 0
	m.Chain = nil
	blob, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("ckpt: compact chk-%d: %w", id, err)
	}
	mtmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(mtmp, blob, 0o644); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(mtmp, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(mtmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	s.mu.Lock()
	s.chains[id] = []uint64{id}
	latest := len(s.completed) > 0 && s.completed[len(s.completed)-1] == id
	s.mu.Unlock()
	if latest {
		s.Stats.SetChainLen(1)
	}
	return nil
}

// list returns the checkpoint ids present in the directory, ascending.
func (s *DirStore) list() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var ids []uint64
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, "chk-") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimPrefix(name, "chk-"), 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

func (s *DirStore) hasManifest(id uint64) bool {
	_, err := os.Stat(filepath.Join(s.ckptDir(id), manifestName))
	return err == nil
}

func (s *DirStore) readManifest(id uint64) (*Manifest, error) {
	blob, err := os.ReadFile(filepath.Join(s.ckptDir(id), manifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("manifest chk-%d: %w", id, err)
	}
	return &m, nil
}

// Latest implements Store.
func (s *DirStore) Latest() (*Manifest, error) {
	ids, err := s.list()
	if err != nil {
		return nil, err
	}
	for i := len(ids) - 1; i >= 0; i-- {
		m, err := s.readManifest(ids[i])
		if os.IsNotExist(err) {
			continue // in-flight or abandoned attempt
		}
		if err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
		return m, nil
	}
	return nil, nil
}

// States implements BulkStateReader: every subtask blob of a committed
// checkpoint, keyed by StateKey. Readers prefer the compacted full state
// file when one exists, then the paged layout, then the classic framed
// file — a checkpoint written in one mode stays readable in any.
func (s *DirStore) States(id uint64) (map[string][]byte, error) {
	dir := s.ckptDir(id)
	if frame, err := os.ReadFile(filepath.Join(dir, fullStateName)); err == nil {
		return parseStateFrame(frame, id)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, pageFileName)); err == nil {
		pf, err := OpenPageFile(filepath.Join(dir, pageFileName))
		if err != nil {
			return nil, err
		}
		defer pf.Close()
		out := make(map[string][]byte)
		for _, k := range pf.Keys() {
			blob, err := pf.Get(k)
			if err != nil {
				return nil, fmt.Errorf("ckpt: chk-%d state: %w", id, err)
			}
			out[k] = blob
		}
		return out, nil
	}
	frame, err := os.ReadFile(filepath.Join(dir, stateName))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return parseStateFrame(frame, id)
}

// State implements Store: reads one subtask's blob from a committed
// checkpoint.
func (s *DirStore) State(id uint64, stage string, subtask int) ([]byte, error) {
	states, err := s.States(id)
	if err != nil {
		return nil, err
	}
	want := StateKey(stage, subtask)
	blob, ok := states[want]
	if !ok {
		return nil, fmt.Errorf("ckpt: chk-%d has no state for %s", id, want)
	}
	return blob, nil
}

// parseStateFrame decodes a framed state file into blobs keyed by
// StateKey.
func parseStateFrame(frame []byte, id uint64) (map[string][]byte, error) {
	out := make(map[string][]byte)
	for off := 0; off < len(frame); {
		name, n, err := readFrameBytes(frame, off)
		if err != nil {
			return nil, fmt.Errorf("ckpt: chk-%d state: %w", id, err)
		}
		off = n
		sub, n2 := binary.Uvarint(frame[off:])
		if n2 <= 0 {
			return nil, fmt.Errorf("ckpt: chk-%d state: truncated subtask", id)
		}
		off += n2
		blob, n3, err := readFrameBytes(frame, off)
		if err != nil {
			return nil, fmt.Errorf("ckpt: chk-%d state: %w", id, err)
		}
		off = n3
		out[StateKey(string(name), int(sub))] = blob
	}
	return out, nil
}

// readFrameBytes reads one [len uvarint][bytes] field at off, returning
// the bytes and the next offset.
func readFrameBytes(frame []byte, off int) ([]byte, int, error) {
	ln, n := binary.Uvarint(frame[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("truncated length")
	}
	off += n
	if ln > uint64(len(frame)-off) {
		return nil, 0, fmt.Errorf("truncated field")
	}
	return frame[off : off+int(ln)], off + int(ln), nil
}
