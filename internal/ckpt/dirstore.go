package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DirStore is the local-directory Store backend. Layout:
//
//	<dir>/chk-<id>/STATE.bin        all subtask blobs, framed (written at commit)
//	<dir>/chk-<id>/MANIFEST.json    commit record (written last)
//
// Put stages blobs in memory; the directory is touched only at Commit,
// which writes the framed state file and then renames the manifest into
// place. Batching every subtask's state into one file keeps the filesystem
// cost per checkpoint at two writes and one rename regardless of topology
// width — with per-blob files, checkpoint I/O dominated the measured
// overhead. The manifest rename is the atomic commit point: a checkpoint
// directory either contains a complete, readable manifest or none, and a
// crash mid-checkpoint leaves at most a state file without a manifest,
// which Latest ignores and the next Commit's garbage collection removes.
//
// STATE.bin framing, repeated per blob:
//
//	[stage len uvarint][stage bytes][subtask uvarint][blob len uvarint][blob]
//
// Retain controls how many completed checkpoints are kept (default 2; the
// previous one survives until its successor is durable).
type DirStore struct {
	dir string
	// Retain is the number of most-recent completed checkpoints kept after
	// a Commit (minimum 1).
	Retain int

	mu         sync.Mutex
	staging    map[uint64]map[string][]byte // in-flight blobs by id, then key
	completed  []uint64                     // committed ids, ascending (gc bookkeeping)
	committing map[uint64]struct{}          // ids with a Commit in progress
}

// NewDirStore creates (if needed) and opens a checkpoint directory. Stale
// attempts from a previous process (state without manifest) are swept once
// here; afterwards garbage collection works from in-memory bookkeeping so
// a commit never rescans the directory.
func NewDirStore(dir string) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("ckpt: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	s := &DirStore{
		dir: dir, Retain: 2,
		staging:    make(map[uint64]map[string][]byte),
		committing: make(map[uint64]struct{}),
	}
	ids, err := s.list()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if s.hasManifest(id) {
			s.completed = append(s.completed, id)
		} else {
			os.RemoveAll(s.ckptDir(id))
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) ckptDir(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("chk-%d", id))
}

const (
	manifestName = "MANIFEST.json"
	stateName    = "STATE.bin"
)

// StateKey is the canonical "stage/subtask" key for one subtask's state
// blob — the same string the tcpnet handshake restore map uses, so the
// writing and reading sides cannot drift.
func StateKey(stage string, subtask int) string {
	return stage + "/" + strconv.Itoa(subtask)
}

// Put implements Store: the blob is staged in memory until Commit.
func (s *DirStore) Put(id uint64, stage string, subtask int, state []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.staging[id]
	if m == nil {
		m = make(map[string][]byte)
		s.staging[id] = m
	}
	m[StateKey(stage, subtask)] = state
	return nil
}

// Commit implements Store: one framed state file, then the atomic manifest
// rename, then garbage collection of checkpoints beyond the retention
// horizon (and of staged blobs from older, abandoned attempts).
func (s *DirStore) Commit(m Manifest) error {
	s.mu.Lock()
	staged := s.staging[m.ID]
	// Drop this checkpoint's staging and anything older that never
	// committed (its barrier generation is gone for good).
	for id := range s.staging {
		if id <= m.ID {
			delete(s.staging, id)
		}
	}
	// Mark the commit in progress: concurrent commits can push the
	// retention horizon past this id while its directory is still
	// manifest-less, and the orphan sweep must not mistake it for a crash
	// artifact mid-write.
	s.committing[m.ID] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.committing, m.ID)
		s.mu.Unlock()
	}()

	dir := s.ckptDir(m.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	keys := make([]string, 0, len(staged))
	for k := range staged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var frame []byte
	for _, k := range keys {
		slash := strings.LastIndexByte(k, '/')
		stage, subStr := k[:slash], k[slash+1:]
		sub, _ := strconv.Atoi(subStr)
		frame = binary.AppendUvarint(frame, uint64(len(stage)))
		frame = append(frame, stage...)
		frame = binary.AppendUvarint(frame, uint64(sub))
		frame = binary.AppendUvarint(frame, uint64(len(staged[k])))
		frame = append(frame, staged[k]...)
	}
	// A failed attempt removes its directory again: a chk dir holding state
	// without a manifest is indistinguishable from a crash artifact and
	// would otherwise sit there until the orphan sweep catches it.
	if err := os.WriteFile(filepath.Join(dir, stateName), frame, 0o644); err != nil {
		os.RemoveAll(dir)
		return fmt.Errorf("ckpt: %w", err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		os.RemoveAll(dir)
		return fmt.Errorf("ckpt: manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		os.RemoveAll(dir)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		os.RemoveAll(dir)
		return fmt.Errorf("ckpt: %w", err)
	}
	s.gc(m.ID)
	return nil
}

// gc records the new completion, removes checkpoints beyond the retention
// horizon (from in-memory bookkeeping), and sweeps orphaned directories: a
// crash between the STATE.bin write and the manifest rename leaves a chk
// dir that will never gain a manifest. A manifest-less directory with an
// id below the oldest retained completed checkpoint is such an orphan,
// UNLESS a concurrent Commit for that id is still mid-write (possible
// when out-of-order completions push the horizon past it) — the
// committing set excludes those. Without the sweep, orphans leak until
// the store is next reopened (and forever on a long-lived process). The
// sweep costs one ReadDir per commit, dwarfed by the state write itself.
// Removal failures are ignored: garbage collection must never fail a
// commit.
func (s *DirStore) gc(latest uint64) {
	retain := s.Retain
	if retain < 1 {
		retain = 1
	}
	s.mu.Lock()
	s.completed = append(s.completed, latest)
	// Retention is by id, not completion order: commits can land out of
	// order (acks are asynchronous), and the newest cut must survive.
	sort.Slice(s.completed, func(i, j int) bool { return s.completed[i] < s.completed[j] })
	var drop []uint64
	if len(s.completed) > retain {
		drop = append(drop, s.completed[:len(s.completed)-retain]...)
		s.completed = append(s.completed[:0], s.completed[len(s.completed)-retain:]...)
	}
	horizon := s.completed[0] // oldest retained completed id
	s.mu.Unlock()
	for _, id := range drop {
		os.RemoveAll(s.ckptDir(id))
	}
	if ids, err := s.list(); err == nil {
		for _, id := range ids {
			if id >= horizon || s.isCommitting(id) || s.hasManifest(id) {
				continue
			}
			os.RemoveAll(s.ckptDir(id))
		}
	}
}

func (s *DirStore) isCommitting(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, busy := s.committing[id]
	return busy
}

// list returns the checkpoint ids present in the directory, ascending.
func (s *DirStore) list() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var ids []uint64
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, "chk-") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimPrefix(name, "chk-"), 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

func (s *DirStore) hasManifest(id uint64) bool {
	_, err := os.Stat(filepath.Join(s.ckptDir(id), manifestName))
	return err == nil
}

// Latest implements Store.
func (s *DirStore) Latest() (*Manifest, error) {
	ids, err := s.list()
	if err != nil {
		return nil, err
	}
	for i := len(ids) - 1; i >= 0; i-- {
		blob, err := os.ReadFile(filepath.Join(s.ckptDir(ids[i]), manifestName))
		if os.IsNotExist(err) {
			continue // in-flight or abandoned attempt
		}
		if err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
		var m Manifest
		if err := json.Unmarshal(blob, &m); err != nil {
			return nil, fmt.Errorf("ckpt: manifest chk-%d: %w", ids[i], err)
		}
		return &m, nil
	}
	return nil, nil
}

// States implements BulkStateReader: one read and parse of the framed
// state file returns every subtask blob, keyed by StateKey.
func (s *DirStore) States(id uint64) (map[string][]byte, error) {
	frame, err := os.ReadFile(filepath.Join(s.ckptDir(id), stateName))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	out := make(map[string][]byte)
	for off := 0; off < len(frame); {
		name, n, err := readFrameBytes(frame, off)
		if err != nil {
			return nil, fmt.Errorf("ckpt: chk-%d state: %w", id, err)
		}
		off = n
		sub, n2 := binary.Uvarint(frame[off:])
		if n2 <= 0 {
			return nil, fmt.Errorf("ckpt: chk-%d state: truncated subtask", id)
		}
		off += n2
		blob, n3, err := readFrameBytes(frame, off)
		if err != nil {
			return nil, fmt.Errorf("ckpt: chk-%d state: %w", id, err)
		}
		off = n3
		out[StateKey(string(name), int(sub))] = blob
	}
	return out, nil
}

// State implements Store: reads the framed state file of a committed
// checkpoint and returns the matching blob.
func (s *DirStore) State(id uint64, stage string, subtask int) ([]byte, error) {
	frame, err := os.ReadFile(filepath.Join(s.ckptDir(id), stateName))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	want := StateKey(stage, subtask)
	for off := 0; off < len(frame); {
		name, n, err := readFrameBytes(frame, off)
		if err != nil {
			return nil, fmt.Errorf("ckpt: chk-%d state: %w", id, err)
		}
		off = n
		sub, n2 := binary.Uvarint(frame[off:])
		if n2 <= 0 {
			return nil, fmt.Errorf("ckpt: chk-%d state: truncated subtask", id)
		}
		off += n2
		blob, n3, err := readFrameBytes(frame, off)
		if err != nil {
			return nil, fmt.Errorf("ckpt: chk-%d state: %w", id, err)
		}
		off = n3
		if StateKey(string(name), int(sub)) == want {
			return blob, nil
		}
	}
	return nil, fmt.Errorf("ckpt: chk-%d has no state for %s", id, want)
}

// readFrameBytes reads one [len uvarint][bytes] field at off, returning
// the bytes and the next offset.
func readFrameBytes(frame []byte, off int) ([]byte, int, error) {
	ln, n := binary.Uvarint(frame[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("truncated length")
	}
	off += n
	if ln > uint64(len(frame)-off) {
		return nil, 0, fmt.Errorf("truncated field")
	}
	return frame[off : off+int(ln)], off + int(ln), nil
}
