package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/flow"
)

func testStages() []StageInfo {
	return []StageInfo{
		{Name: "allocate", Parallelism: 2},
		{Name: "cluster", Parallelism: 3},
	}
}

// ackAll delivers one successful ack per subtask for checkpoint id.
func ackAll(c *Coordinator, id uint64) {
	for si, st := range c.Stages() {
		for sub := 0; sub < st.Parallelism; sub++ {
			c.Ack(id, si, sub, []byte(fmt.Sprintf("%d/%d/%d", id, si, sub)), nil)
		}
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if m, err := store.Latest(); err != nil || m != nil {
		t.Fatalf("empty store Latest = %v, %v", m, err)
	}
	if err := store.Put(1, "cluster", 0, []byte("state")); err != nil {
		t.Fatal(err)
	}
	// Uncommitted blobs are invisible.
	if m, err := store.Latest(); err != nil || m != nil {
		t.Fatalf("uncommitted Latest = %v, %v", m, err)
	}
	man := Manifest{ID: 1, Source: SourcePosition{Snapshots: 10, LastTick: 9}, Stages: testStages()}
	if err := store.Commit(man); err != nil {
		t.Fatal(err)
	}
	got, err := store.Latest()
	if err != nil || got == nil {
		t.Fatalf("Latest after commit = %v, %v", got, err)
	}
	if got.ID != 1 || !reflect.DeepEqual(got.Source, man.Source) || len(got.Stages) != 2 {
		t.Fatalf("manifest round trip: %+v", got)
	}
	blob, err := store.State(1, "cluster", 0)
	if err != nil || string(blob) != "state" {
		t.Fatalf("State = %q, %v", blob, err)
	}
	if _, err := store.State(1, "cluster", 1); err == nil {
		t.Fatal("missing blob read succeeded")
	}
}

func TestDirStoreRetention(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 4; id++ {
		if err := store.Put(id, "s", 0, []byte{byte(id)}); err != nil {
			t.Fatal(err)
		}
		if err := store.Commit(Manifest{ID: id, Stages: []StageInfo{{Name: "s", Parallelism: 1}}}); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := store.list()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 4 {
		t.Fatalf("retained %v, want [3 4]", ids)
	}
	m, err := store.Latest()
	if err != nil || m == nil || m.ID != 4 {
		t.Fatalf("Latest = %+v, %v", m, err)
	}
}

func TestDirStoreDropsAbandonedAttempts(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint 1 commits, 2 is abandoned (blobs, no manifest), 3 commits.
	stages := []StageInfo{{Name: "s", Parallelism: 1}}
	if err := store.Put(1, "s", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := store.Commit(Manifest{ID: 1, Stages: stages}); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(2, "s", 0, []byte("orphan")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(3, "s", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := store.Commit(Manifest{ID: 3, Stages: stages}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(store.Dir(), "chk-2")); !os.IsNotExist(err) {
		t.Fatalf("abandoned chk-2 survived gc: %v", err)
	}
	m, err := store.Latest()
	if err != nil || m == nil || m.ID != 3 {
		t.Fatalf("Latest = %+v, %v", m, err)
	}
}

func TestCoordinatorCompletes(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(store, testStages())
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu   sync.Mutex
		done []Manifest
	)
	coord.OnComplete = func(m Manifest) {
		mu.Lock()
		done = append(done, m)
		mu.Unlock()
	}
	if err := coord.Begin(1, SourcePosition{Snapshots: 5, LastTick: 4}, 0, false); err != nil {
		t.Fatal(err)
	}
	ackAll(coord, 1)
	if len(done) != 1 || done[0].ID != 1 || done[0].Source.Snapshots != 5 {
		t.Fatalf("OnComplete saw %+v", done)
	}
	if id, ok := coord.Completed(); !ok || id != 1 {
		t.Fatalf("Completed = %d, %v", id, ok)
	}
	// The committed states are readable via the manifest.
	restore, err := RestoreFunc(store, &done[0], done[0].Stages)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(restore(1, 2)); got != "1/1/2" {
		t.Fatalf("restore = %q", got)
	}
	// Duplicate Begin is rejected; acks for unknown ids are dropped.
	if err := coord.Begin(1, SourcePosition{}, 0, false); err == nil {
		t.Fatal("duplicate Begin accepted")
	}
	coord.Ack(99, 0, 0, nil, nil) // must not panic or commit
	if id, _ := coord.Completed(); id != 1 {
		t.Fatalf("unknown ack changed completion to %d", id)
	}
}

func TestCoordinatorAbortsOnSnapshotError(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(store, testStages())
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	coord.OnComplete = func(Manifest) { completed++ }
	if err := coord.Begin(7, SourcePosition{}, 0, false); err != nil {
		t.Fatal(err)
	}
	coord.Ack(7, 0, 0, nil, errors.New("serialization failed"))
	ackAll(coord, 7) // stragglers after the abort
	if completed != 0 {
		t.Fatal("aborted checkpoint completed")
	}
	if _, ok := coord.Completed(); ok {
		t.Fatal("aborted checkpoint recorded as done")
	}
	// The next checkpoint is unaffected.
	if err := coord.Begin(8, SourcePosition{Snapshots: 1}, 0, false); err != nil {
		t.Fatal(err)
	}
	ackAll(coord, 8)
	if completed != 1 {
		t.Fatalf("checkpoint 8 completions = %d", completed)
	}
	m, err := store.Latest()
	if err != nil || m == nil || m.ID != 8 {
		t.Fatalf("Latest = %+v, %v", m, err)
	}
}

// A duplicated ack frame (or one for a nonexistent subtask) must not let
// a checkpoint commit with another subtask's state missing.
func TestDuplicateAndBogusAcks(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(store, []StageInfo{{Name: "s", Parallelism: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Begin(1, SourcePosition{}, 0, false); err != nil {
		t.Fatal(err)
	}
	coord.Ack(1, 0, 0, []byte("a"), nil)
	coord.Ack(1, 0, 0, []byte("a"), nil) // duplicate: must not count twice
	if _, ok := coord.Completed(); ok {
		t.Fatal("checkpoint committed from duplicated acks")
	}
	coord.Ack(1, 0, 1, []byte("b"), nil)
	if id, ok := coord.Completed(); !ok || id != 1 {
		t.Fatalf("Completed = %d, %v after full acks", id, ok)
	}
	// Out-of-range subtask aborts the checkpoint instead of counting.
	if err := coord.Begin(2, SourcePosition{}, 0, false); err != nil {
		t.Fatal(err)
	}
	coord.Ack(2, 0, 5, nil, nil)
	coord.Ack(2, 0, 0, nil, nil)
	coord.Ack(2, 0, 1, nil, nil)
	if id, _ := coord.Completed(); id != 1 {
		t.Fatalf("aborted checkpoint 2 committed (completed=%d)", id)
	}
}

// Acks are asynchronous, so a newer checkpoint can finish before an older
// one. The older checkpoint must then be dropped (not committed), and
// retention must keep the highest ids — a regression test for the gc
// deleting the newest cut when completion order inverted.
func TestOutOfOrderCompletion(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stages := []StageInfo{{Name: "s", Parallelism: 2}}
	coord, err := NewCoordinator(store, stages)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 4; id++ {
		if err := coord.Begin(id, SourcePosition{Snapshots: int64(id) * 10}, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoints 1, 2, 4 complete; 3's second ack arrives last.
	for _, id := range []uint64{1, 2, 4} {
		coord.Ack(id, 0, 0, []byte{byte(id)}, nil)
		coord.Ack(id, 0, 1, []byte{byte(id)}, nil)
	}
	coord.Ack(3, 0, 0, []byte{3}, nil)
	coord.Ack(3, 0, 1, []byte{3}, nil) // completes after 4: superseded
	man, err := store.Latest()
	if err != nil || man == nil {
		t.Fatalf("Latest = %v, %v", man, err)
	}
	if man.ID != 4 {
		t.Fatalf("Latest = checkpoint %d, want 4 (newest cut must survive)", man.ID)
	}
	if blob, err := store.State(4, "s", 0); err != nil || len(blob) != 1 || blob[0] != 4 {
		t.Fatalf("checkpoint 4 state = %v, %v", blob, err)
	}
	if id, ok := coord.Completed(); !ok || id != 4 {
		t.Fatalf("Completed = %d, %v", id, ok)
	}
}

func TestManifestValidate(t *testing.T) {
	// Legacy manifest (no max parallelism): exact parallelism required.
	m := Manifest{Stages: testStages()}
	if err := m.Validate(testStages(), 0); err != nil {
		t.Fatal(err)
	}
	other := testStages()
	other[1].Parallelism = 4
	if err := m.Validate(other, 0); err == nil {
		t.Fatal("legacy parallelism mismatch accepted")
	}
	if err := m.Validate(other[:1], 0); err == nil {
		t.Fatal("stage count mismatch accepted")
	}

	// Key-group manifest: parallelism may change within max parallelism.
	km := Manifest{MaxParallelism: 8, Stages: testStages()}
	if err := km.Validate(other, 8); err != nil {
		t.Fatalf("rescale within max parallelism rejected: %v", err)
	}
	if err := km.Validate(testStages(), 16); err == nil {
		t.Fatal("max parallelism mismatch accepted")
	}
	big := testStages()
	big[0].Parallelism = 9
	if err := km.Validate(big, 8); err == nil {
		t.Fatal("parallelism beyond max parallelism accepted")
	}
	renamed := testStages()
	renamed[0].Name = "other"
	if err := km.Validate(renamed, 8); err == nil {
		t.Fatal("renamed stage accepted")
	}
}

// A manifest committed by a coordinator with MaxParallelism set records
// the key-group ranges each subtask blob covers: contiguous, disjoint,
// covering [0, max).
func TestManifestRecordsKeyGroupRanges(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(store, testStages())
	if err != nil {
		t.Fatal(err)
	}
	coord.MaxParallelism = 8
	if err := coord.Begin(1, SourcePosition{}, 0, false); err != nil {
		t.Fatal(err)
	}
	ackAll(coord, 1)
	man, err := store.Latest()
	if err != nil || man == nil {
		t.Fatalf("Latest = %v, %v", man, err)
	}
	if man.MaxParallelism != 8 {
		t.Fatalf("manifest max parallelism = %d, want 8", man.MaxParallelism)
	}
	for _, st := range man.Stages {
		if len(st.Ranges) != st.Parallelism {
			t.Fatalf("stage %s has %d ranges for %d subtasks", st.Name, len(st.Ranges), st.Parallelism)
		}
		next := 0
		for s, r := range st.Ranges {
			if r[0] != next || r[1] < r[0] {
				t.Fatalf("stage %s subtask %d range %v not contiguous from %d", st.Name, s, r, next)
			}
			next = r[1]
		}
		if next != 8 {
			t.Fatalf("stage %s ranges cover [0, %d), want [0, 8)", st.Name, next)
		}
	}
}

// Reshard re-slices key-group framed blobs across a parallelism change;
// every group must land on exactly the new subtask owning its range, and
// subtask-scoped (raw) state must refuse to rescale.
func TestReshard(t *testing.T) {
	const max = 16
	old := []StageInfo{{Name: "s", Parallelism: 2}}
	m := &Manifest{ID: 1, MaxParallelism: max, Stages: manifestStages(old, max)}

	// One blob per old subtask, one frame per owned group.
	states := map[string][]byte{}
	for sub := 0; sub < 2; sub++ {
		groups := map[int][]byte{}
		start, end := flow.KeyGroupRange(max, 2, sub)
		for g := start; g < end; g++ {
			groups[g] = []byte{byte(g)}
		}
		states[StateKey("s", sub)] = flow.EncodeGroupStates(groups)
	}
	for _, newPar := range []int{1, 3, 4, 5, 16} {
		target := []StageInfo{{Name: "s", Parallelism: newPar}}
		out, err := Reshard(states, m, target)
		if err != nil {
			t.Fatalf("reshard 2 -> %d: %v", newPar, err)
		}
		seen := map[int]bool{}
		for sub := 0; sub < newPar; sub++ {
			blob := out[StateKey("s", sub)]
			if len(blob) == 0 {
				continue
			}
			groups, err := flow.DecodeGroupStates(blob)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range groups {
				if flow.SubtaskForGroup(g.Group, max, newPar) != sub {
					t.Fatalf("group %d landed on subtask %d at parallelism %d", g.Group, sub, newPar)
				}
				if seen[g.Group] {
					t.Fatalf("group %d duplicated at parallelism %d", g.Group, newPar)
				}
				if len(g.Data) != 1 || g.Data[0] != byte(g.Group) {
					t.Fatalf("group %d data corrupted: %v", g.Group, g.Data)
				}
				seen[g.Group] = true
			}
		}
		if len(seen) != max {
			t.Fatalf("reshard 2 -> %d kept %d of %d groups", newPar, len(seen), max)
		}
	}

	// Unchanged parallelism passes blobs through untouched.
	same, err := Reshard(states, m, old)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range states {
		if string(same[k]) != string(v) {
			t.Fatalf("pass-through changed blob %s", k)
		}
	}

	// Raw subtask-scoped state cannot rescale.
	raw := map[string][]byte{StateKey("s", 0): flow.EncodeRawState([]byte("opaque"))}
	if _, err := Reshard(raw, m, []StageInfo{{Name: "s", Parallelism: 4}}); err == nil {
		t.Fatal("raw state reshard accepted")
	}

	// A blob whose frames fall outside the range the manifest records for
	// it is corrupt and must fail the reshard.
	stray := map[string][]byte{
		// Subtask 1's range at parallelism 2 is [8, 16); group 0 is not in it.
		StateKey("s", 1): flow.EncodeGroupStates(map[int][]byte{0: {0xAA}}),
	}
	if _, err := Reshard(stray, m, []StageInfo{{Name: "s", Parallelism: 4}}); err == nil {
		t.Fatal("blob outside its manifest range accepted")
	}
}

// An orphaned chk directory — a crash between the STATE.bin write and the
// manifest rename — must be garbage-collected by a later commit instead of
// leaking forever.
func TestDirStoreSweepsOrphansOnCommit(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	stages := []StageInfo{{Name: "s", Parallelism: 1}}
	// Fabricate the crash artifact AFTER the store is open, so the
	// open-time sweep cannot have removed it: chk-3 has state but no
	// manifest and its id will fall below the retention horizon.
	orphan := filepath.Join(dir, "chk-3")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "STATE.bin"), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	for id := uint64(4); id <= 5; id++ {
		if err := store.Put(id, "s", 0, []byte{byte(id)}); err != nil {
			t.Fatal(err)
		}
		if err := store.Commit(Manifest{ID: id, Stages: stages}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned chk-3 survived commit gc: %v", err)
	}
	// The retained, committed checkpoints are untouched.
	ids, err := store.list()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 4 || ids[1] != 5 {
		t.Fatalf("retained %v, want [4 5]", ids)
	}
}
