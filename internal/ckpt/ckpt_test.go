package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testStages() []StageInfo {
	return []StageInfo{
		{Name: "allocate", Parallelism: 2},
		{Name: "cluster", Parallelism: 3},
	}
}

// ackAll delivers one successful ack per subtask for checkpoint id.
func ackAll(c *Coordinator, id uint64) {
	for si, st := range c.Stages() {
		for sub := 0; sub < st.Parallelism; sub++ {
			c.Ack(id, si, sub, []byte(fmt.Sprintf("%d/%d/%d", id, si, sub)), nil)
		}
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if m, err := store.Latest(); err != nil || m != nil {
		t.Fatalf("empty store Latest = %v, %v", m, err)
	}
	if err := store.Put(1, "cluster", 0, []byte("state")); err != nil {
		t.Fatal(err)
	}
	// Uncommitted blobs are invisible.
	if m, err := store.Latest(); err != nil || m != nil {
		t.Fatalf("uncommitted Latest = %v, %v", m, err)
	}
	man := Manifest{ID: 1, Source: SourcePosition{Snapshots: 10, LastTick: 9}, Stages: testStages()}
	if err := store.Commit(man); err != nil {
		t.Fatal(err)
	}
	got, err := store.Latest()
	if err != nil || got == nil {
		t.Fatalf("Latest after commit = %v, %v", got, err)
	}
	if got.ID != 1 || got.Source != man.Source || len(got.Stages) != 2 {
		t.Fatalf("manifest round trip: %+v", got)
	}
	blob, err := store.State(1, "cluster", 0)
	if err != nil || string(blob) != "state" {
		t.Fatalf("State = %q, %v", blob, err)
	}
	if _, err := store.State(1, "cluster", 1); err == nil {
		t.Fatal("missing blob read succeeded")
	}
}

func TestDirStoreRetention(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 4; id++ {
		if err := store.Put(id, "s", 0, []byte{byte(id)}); err != nil {
			t.Fatal(err)
		}
		if err := store.Commit(Manifest{ID: id, Stages: []StageInfo{{Name: "s", Parallelism: 1}}}); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := store.list()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 4 {
		t.Fatalf("retained %v, want [3 4]", ids)
	}
	m, err := store.Latest()
	if err != nil || m == nil || m.ID != 4 {
		t.Fatalf("Latest = %+v, %v", m, err)
	}
}

func TestDirStoreDropsAbandonedAttempts(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint 1 commits, 2 is abandoned (blobs, no manifest), 3 commits.
	stages := []StageInfo{{Name: "s", Parallelism: 1}}
	if err := store.Put(1, "s", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := store.Commit(Manifest{ID: 1, Stages: stages}); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(2, "s", 0, []byte("orphan")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(3, "s", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := store.Commit(Manifest{ID: 3, Stages: stages}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(store.Dir(), "chk-2")); !os.IsNotExist(err) {
		t.Fatalf("abandoned chk-2 survived gc: %v", err)
	}
	m, err := store.Latest()
	if err != nil || m == nil || m.ID != 3 {
		t.Fatalf("Latest = %+v, %v", m, err)
	}
}

func TestCoordinatorCompletes(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(store, testStages())
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu   sync.Mutex
		done []Manifest
	)
	coord.OnComplete = func(m Manifest) {
		mu.Lock()
		done = append(done, m)
		mu.Unlock()
	}
	if err := coord.Begin(1, SourcePosition{Snapshots: 5, LastTick: 4}); err != nil {
		t.Fatal(err)
	}
	ackAll(coord, 1)
	if len(done) != 1 || done[0].ID != 1 || done[0].Source.Snapshots != 5 {
		t.Fatalf("OnComplete saw %+v", done)
	}
	if id, ok := coord.Completed(); !ok || id != 1 {
		t.Fatalf("Completed = %d, %v", id, ok)
	}
	// The committed states are readable via the manifest.
	restore, err := RestoreFunc(store, &done[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := string(restore(1, 2)); got != "1/1/2" {
		t.Fatalf("restore = %q", got)
	}
	// Duplicate Begin is rejected; acks for unknown ids are dropped.
	if err := coord.Begin(1, SourcePosition{}); err == nil {
		t.Fatal("duplicate Begin accepted")
	}
	coord.Ack(99, 0, 0, nil, nil) // must not panic or commit
	if id, _ := coord.Completed(); id != 1 {
		t.Fatalf("unknown ack changed completion to %d", id)
	}
}

func TestCoordinatorAbortsOnSnapshotError(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(store, testStages())
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	coord.OnComplete = func(Manifest) { completed++ }
	if err := coord.Begin(7, SourcePosition{}); err != nil {
		t.Fatal(err)
	}
	coord.Ack(7, 0, 0, nil, errors.New("serialization failed"))
	ackAll(coord, 7) // stragglers after the abort
	if completed != 0 {
		t.Fatal("aborted checkpoint completed")
	}
	if _, ok := coord.Completed(); ok {
		t.Fatal("aborted checkpoint recorded as done")
	}
	// The next checkpoint is unaffected.
	if err := coord.Begin(8, SourcePosition{Snapshots: 1}); err != nil {
		t.Fatal(err)
	}
	ackAll(coord, 8)
	if completed != 1 {
		t.Fatalf("checkpoint 8 completions = %d", completed)
	}
	m, err := store.Latest()
	if err != nil || m == nil || m.ID != 8 {
		t.Fatalf("Latest = %+v, %v", m, err)
	}
}

// A duplicated ack frame (or one for a nonexistent subtask) must not let
// a checkpoint commit with another subtask's state missing.
func TestDuplicateAndBogusAcks(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(store, []StageInfo{{Name: "s", Parallelism: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Begin(1, SourcePosition{}); err != nil {
		t.Fatal(err)
	}
	coord.Ack(1, 0, 0, []byte("a"), nil)
	coord.Ack(1, 0, 0, []byte("a"), nil) // duplicate: must not count twice
	if _, ok := coord.Completed(); ok {
		t.Fatal("checkpoint committed from duplicated acks")
	}
	coord.Ack(1, 0, 1, []byte("b"), nil)
	if id, ok := coord.Completed(); !ok || id != 1 {
		t.Fatalf("Completed = %d, %v after full acks", id, ok)
	}
	// Out-of-range subtask aborts the checkpoint instead of counting.
	if err := coord.Begin(2, SourcePosition{}); err != nil {
		t.Fatal(err)
	}
	coord.Ack(2, 0, 5, nil, nil)
	coord.Ack(2, 0, 0, nil, nil)
	coord.Ack(2, 0, 1, nil, nil)
	if id, _ := coord.Completed(); id != 1 {
		t.Fatalf("aborted checkpoint 2 committed (completed=%d)", id)
	}
}

// Acks are asynchronous, so a newer checkpoint can finish before an older
// one. The older checkpoint must then be dropped (not committed), and
// retention must keep the highest ids — a regression test for the gc
// deleting the newest cut when completion order inverted.
func TestOutOfOrderCompletion(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stages := []StageInfo{{Name: "s", Parallelism: 2}}
	coord, err := NewCoordinator(store, stages)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 4; id++ {
		if err := coord.Begin(id, SourcePosition{Snapshots: int64(id) * 10}); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoints 1, 2, 4 complete; 3's second ack arrives last.
	for _, id := range []uint64{1, 2, 4} {
		coord.Ack(id, 0, 0, []byte{byte(id)}, nil)
		coord.Ack(id, 0, 1, []byte{byte(id)}, nil)
	}
	coord.Ack(3, 0, 0, []byte{3}, nil)
	coord.Ack(3, 0, 1, []byte{3}, nil) // completes after 4: superseded
	man, err := store.Latest()
	if err != nil || man == nil {
		t.Fatalf("Latest = %v, %v", man, err)
	}
	if man.ID != 4 {
		t.Fatalf("Latest = checkpoint %d, want 4 (newest cut must survive)", man.ID)
	}
	if blob, err := store.State(4, "s", 0); err != nil || len(blob) != 1 || blob[0] != 4 {
		t.Fatalf("checkpoint 4 state = %v, %v", blob, err)
	}
	if id, ok := coord.Completed(); !ok || id != 4 {
		t.Fatalf("Completed = %d, %v", id, ok)
	}
}

func TestManifestValidate(t *testing.T) {
	m := Manifest{Stages: testStages()}
	if err := m.Validate(testStages()); err != nil {
		t.Fatal(err)
	}
	other := testStages()
	other[1].Parallelism = 4
	if err := m.Validate(other); err == nil {
		t.Fatal("parallelism mismatch accepted")
	}
	if err := m.Validate(other[:1]); err == nil {
		t.Fatal("stage count mismatch accepted")
	}
}
