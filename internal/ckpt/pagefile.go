package ckpt

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/flow"
)

// PageFile is the paged persistent blob layout behind DirStore's Paged
// mode: one file of fixed-size pages holding named blobs, written
// incrementally as subtask acks arrive instead of buffering every blob in
// memory until commit.
//
// Layout:
//
//	page 0              superblock: magic "PGF1", page size, page count,
//	                    free-list head, directory blob ref (written last,
//	                    at Finalize)
//	page 1..n           [next page uint64 LE][used uint32 LE][payload]
//
// A blob is a chain of pages linked by their next pointers (0 terminates;
// page 0 is the superblock, so 0 is never a valid link). Overwriting a
// blob returns its old pages to a free list from which later allocations
// draw before growing the file. The directory — blob name to (first page,
// total length) — is itself serialized as a blob at Finalize, and the
// superblock referencing it is written last: a file whose superblock
// never landed fails Open's magic check, exactly like a torn STATE.bin
// is covered by the missing-manifest rule.
type PageFile struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	pages    uint64 // allocated pages, including the superblock
	free     []uint64
	dir      map[string]pageRef
	writable bool
}

type pageRef struct {
	first  uint64 // first page of the chain (0 = empty blob)
	length uint64 // total payload bytes
}

const (
	// DefaultPageSize is the page size CreatePageFile uses when given 0.
	DefaultPageSize = 4096

	pageMagic      = "PGF1"
	pageHeaderSize = 12 // next page (uint64) + used payload bytes (uint32)
	superblockSize = 4 + 4 + 8 + 8 + 8 + 8
)

// CreatePageFile creates (truncating) a page file for writing. Page 0 is
// reserved immediately but stays zeroed until Finalize, so an abandoned
// file is never mistaken for a complete one.
func CreatePageFile(path string, pageSize int) (*PageFile, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pageSize <= pageHeaderSize || pageSize < superblockSize {
		return nil, fmt.Errorf("ckpt: page size %d too small", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	p := &PageFile{f: f, pageSize: pageSize, pages: 1, dir: make(map[string]pageRef), writable: true}
	if _, err := f.WriteAt(make([]byte, pageSize), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return p, nil
}

// OpenPageFile opens a finalized page file for reading. The returned
// error preserves os.IsNotExist when the file is absent.
func OpenPageFile(path string) (*PageFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	super := make([]byte, superblockSize)
	if _, err := f.ReadAt(super, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: page file %s: superblock: %w", path, err)
	}
	if string(super[:4]) != pageMagic {
		f.Close()
		return nil, fmt.Errorf("ckpt: page file %s: bad magic (not finalized?)", path)
	}
	pageSize := int(binary.LittleEndian.Uint32(super[4:]))
	pages := binary.LittleEndian.Uint64(super[8:])
	dirFirst := binary.LittleEndian.Uint64(super[24:])
	dirLen := binary.LittleEndian.Uint64(super[32:])
	if pageSize <= pageHeaderSize || pages < 1 {
		f.Close()
		return nil, fmt.Errorf("ckpt: page file %s: corrupt superblock", path)
	}
	p := &PageFile{f: f, pageSize: pageSize, pages: pages}
	dirBlob, err := p.readBlob(dirFirst, dirLen)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: page file %s: directory: %w", path, err)
	}
	if p.dir, err = decodePageDir(dirBlob); err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: page file %s: directory: %w", path, err)
	}
	return p, nil
}

// Put writes (or overwrites) one named blob.
func (p *PageFile) Put(key string, blob []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.writable {
		return fmt.Errorf("ckpt: page file is not writable")
	}
	if old, ok := p.dir[key]; ok {
		if err := p.freeChain(old.first); err != nil {
			return err
		}
	}
	first, err := p.writeBlob(blob)
	if err != nil {
		return err
	}
	p.dir[key] = pageRef{first: first, length: uint64(len(blob))}
	return nil
}

// Get reads one named blob (nil for a zero-length blob).
func (p *PageFile) Get(key string) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ref, ok := p.dir[key]
	if !ok {
		return nil, fmt.Errorf("ckpt: page file has no blob %q", key)
	}
	return p.readBlob(ref.first, ref.length)
}

// Keys returns the directory's blob names, sorted.
func (p *PageFile) Keys() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]string, 0, len(p.dir))
	for k := range p.dir {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Finalize writes the directory blob, links the free pages into the
// on-disk free list, writes the superblock (last), and syncs. The file
// becomes read-only.
func (p *PageFile) Finalize() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.writable {
		return fmt.Errorf("ckpt: page file already finalized")
	}
	dirBlob := encodePageDir(p.dir)
	dirFirst, err := p.writeBlob(dirBlob)
	if err != nil {
		return err
	}
	var freeHead uint64
	for i, idx := range p.free {
		next := uint64(0)
		if i+1 < len(p.free) {
			next = p.free[i+1]
		}
		if err := p.writePage(idx, next, nil); err != nil {
			return err
		}
	}
	if len(p.free) > 0 {
		freeHead = p.free[0]
	}
	super := make([]byte, p.pageSize)
	copy(super, pageMagic)
	binary.LittleEndian.PutUint32(super[4:], uint32(p.pageSize))
	binary.LittleEndian.PutUint64(super[8:], p.pages)
	binary.LittleEndian.PutUint64(super[16:], freeHead)
	binary.LittleEndian.PutUint64(super[24:], dirFirst)
	binary.LittleEndian.PutUint64(super[32:], uint64(len(dirBlob)))
	if _, err := p.f.WriteAt(super, 0); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	p.writable = false
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// Close releases the file handle (without finalizing).
func (p *PageFile) Close() error { return p.f.Close() }

func (p *PageFile) alloc() uint64 {
	if n := len(p.free); n > 0 {
		idx := p.free[n-1]
		p.free = p.free[:n-1]
		return idx
	}
	idx := p.pages
	p.pages++
	return idx
}

// writeBlob stores a blob as a freshly allocated page chain and returns
// its first page (0 for an empty blob).
func (p *PageFile) writeBlob(blob []byte) (uint64, error) {
	if len(blob) == 0 {
		return 0, nil
	}
	payload := p.pageSize - pageHeaderSize
	n := (len(blob) + payload - 1) / payload
	idxs := make([]uint64, n)
	for i := range idxs {
		idxs[i] = p.alloc()
	}
	for i, idx := range idxs {
		start := i * payload
		end := start + payload
		if end > len(blob) {
			end = len(blob)
		}
		next := uint64(0)
		if i+1 < n {
			next = idxs[i+1]
		}
		if err := p.writePage(idx, next, blob[start:end]); err != nil {
			return 0, err
		}
	}
	return idxs[0], nil
}

func (p *PageFile) writePage(idx, next uint64, payload []byte) error {
	buf := make([]byte, p.pageSize)
	binary.LittleEndian.PutUint64(buf, next)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(payload)))
	copy(buf[pageHeaderSize:], payload)
	if _, err := p.f.WriteAt(buf, int64(idx)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

func (p *PageFile) readPage(idx uint64) (next uint64, payload []byte, err error) {
	if idx == 0 || idx >= p.pages {
		return 0, nil, fmt.Errorf("page %d outside [1, %d)", idx, p.pages)
	}
	buf := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(buf, int64(idx)*int64(p.pageSize)); err != nil {
		return 0, nil, err
	}
	next = binary.LittleEndian.Uint64(buf)
	used := binary.LittleEndian.Uint32(buf[8:])
	if int(used) > p.pageSize-pageHeaderSize {
		return 0, nil, fmt.Errorf("page %d used %d exceeds payload capacity", idx, used)
	}
	return next, buf[pageHeaderSize : pageHeaderSize+used], nil
}

func (p *PageFile) readBlob(first, length uint64) ([]byte, error) {
	if first == 0 {
		if length != 0 {
			return nil, fmt.Errorf("empty chain but directory records %d bytes", length)
		}
		return nil, nil
	}
	var out []byte
	steps := uint64(0)
	for idx := first; idx != 0; {
		if steps++; steps > p.pages {
			return nil, fmt.Errorf("page chain from %d cycles", first)
		}
		next, payload, err := p.readPage(idx)
		if err != nil {
			return nil, err
		}
		out = append(out, payload...)
		idx = next
	}
	if uint64(len(out)) != length {
		return nil, fmt.Errorf("chain from %d holds %d bytes, directory records %d", first, len(out), length)
	}
	return out, nil
}

// freeChain returns a blob's pages to the free list.
func (p *PageFile) freeChain(first uint64) error {
	steps := uint64(0)
	for idx := first; idx != 0; {
		if steps++; steps > p.pages {
			return fmt.Errorf("ckpt: page chain from %d cycles", first)
		}
		next, _, err := p.readPage(idx)
		if err != nil {
			return fmt.Errorf("ckpt: %w", err)
		}
		p.free = append(p.free, idx)
		idx = next
	}
	return nil
}

// encodePageDir serializes the directory:
//
//	[entries uvarint]([key len uvarint][key][first page uvarint][length uvarint])*
func encodePageDir(dir map[string]pageRef) []byte {
	keys := make([]string, 0, len(dir))
	for k := range dir {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, dir[k].first)
		buf = binary.AppendUvarint(buf, dir[k].length)
	}
	return buf
}

// decodePageDir parses an encodePageDir blob.
func decodePageDir(blob []byte) (map[string]pageRef, error) {
	d := flow.NewDec(blob)
	n := d.Uvarint()
	if n > uint64(d.Remaining()) { // every entry costs >= 3 bytes
		d.Failf("page directory: %d entries exceed %d remaining bytes", n, d.Remaining())
	}
	dir := make(map[string]pageRef, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		kl := d.Uvarint()
		if kl > uint64(d.Remaining()) {
			d.Failf("page directory: key length %d exceeds %d remaining bytes", kl, d.Remaining())
			break
		}
		key := string(d.Bytes(int(kl)))
		first := d.Uvarint()
		length := d.Uvarint()
		dir[key] = pageRef{first: first, length: length}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("page directory: %d trailing bytes", d.Remaining())
	}
	return dir, nil
}
