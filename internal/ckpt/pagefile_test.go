package ckpt

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

func TestPageFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.pg")
	pf, err := CreatePageFile(path, 64) // tiny pages force multi-page chains
	if err != nil {
		t.Fatal(err)
	}
	blobs := map[string][]byte{
		"a/0": []byte("short"),
		"b/1": bytes.Repeat([]byte{0xAB}, 1000), // ~20 pages at 64B
		"c/2": nil,                              // empty blob round-trips
		"d/3": bytes.Repeat([]byte("xyz"), 51),  // length not page-aligned
	}
	for k, b := range blobs {
		if err := pf.Put(k, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := pf.Finalize(); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	ro, err := OpenPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	keys := ro.Keys()
	sort.Strings(keys)
	if want := []string{"a/0", "b/1", "c/2", "d/3"}; !reflect.DeepEqual(keys, want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for k, want := range blobs {
		got, err := ro.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%q) = %d bytes, want %d", k, len(got), len(want))
		}
	}
	if _, err := ro.Get("absent"); err == nil {
		t.Fatal("Get of absent key succeeded")
	}
}

// A page file killed before Finalize has a zeroed superblock (page 0 is
// reserved at Create and written last): opening it must fail cleanly, so
// the store treats the checkpoint attempt as never committed.
func TestPageFileUnfinalizedOpenFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.pg")
	pf, err := CreatePageFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.Put("s/0", []byte("state")); err != nil {
		t.Fatal(err)
	}
	pf.Close() // kill: no Finalize
	if _, err := OpenPageFile(path); err == nil {
		t.Fatal("opened an unfinalized page file")
	}
}

// Freed pages are recycled: overwriting keys across generations must not
// grow the file linearly.
func TestPageFileFreeListReuse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.pg")
	pf, err := CreatePageFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{1}, 1024)
	for gen := 0; gen < 20; gen++ {
		if err := pf.Put("s/0", payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := pf.Finalize(); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// One generation is ~9 pages of 128B; 20 generations without reuse
	// would be ~180. Allow generous slack for the directory and free-list
	// linkage, but catch linear growth.
	if max := int64(128 * 64); st.Size() > max {
		t.Fatalf("page file grew to %d bytes; free pages not recycled", st.Size())
	}
	ro, err := OpenPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if got, err := ro.Get("s/0"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get after churn = %d bytes, %v", len(got), err)
	}
}

// The paged store layout round-trips through the full Put/Commit/States
// path and survives a reopen.
func TestDirStorePagedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.Paged = true
	stages := []StageInfo{{Name: "s", Parallelism: 2}}
	want := map[string][]byte{}
	for sub := 0; sub < 2; sub++ {
		blob := bytes.Repeat([]byte{byte(sub + 1)}, 5000)
		want[StateKey("s", sub)] = blob
		if err := store.Put(1, "s", sub, blob); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Commit(Manifest{ID: 1, Stages: stages}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(store.ckptDir(1), pageFileName)); err != nil {
		t.Fatalf("no %s in paged mode: %v", pageFileName, err)
	}
	check := func(s *DirStore) {
		t.Helper()
		states, err := s.States(1)
		if err != nil {
			t.Fatal(err)
		}
		for k, blob := range want {
			if !bytes.Equal(states[k], blob) {
				t.Fatalf("state %s = %d bytes, want %d", k, len(states[k]), len(blob))
			}
		}
		one, err := s.State(1, "s", 1)
		if err != nil || !bytes.Equal(one, want[StateKey("s", 1)]) {
			t.Fatalf("State = %d bytes, %v", len(one), err)
		}
	}
	check(store)
	reopened, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	check(reopened)
}

// Delta chains replay across the paged layout too: each chain element's
// blobs live in its own page file.
func TestDirStorePagedDeltaChain(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.Paged = true
	store.Retain = 10
	commitFull(t, store, 1, map[int][]byte{0: []byte("a0"), 1: []byte("b0")})
	commitDelta(t, store, 2, 1, map[int][]byte{0: []byte("a1")}, []int{1})
	want := map[int]string{0: "a1"}
	if got := decodeStage(t, store, 2); !reflect.DeepEqual(got, want) {
		t.Fatalf("paged chain replay = %v, want %v", got, want)
	}
}

func FuzzDecodePageDir(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodePageDir(nil))
	f.Add(encodePageDir(map[string]pageRef{"s/0": {first: 1, length: 5}}))
	f.Add(encodePageDir(map[string]pageRef{
		"cluster/0": {first: 2, length: 1},
		"enum/13":   {first: 9, length: 1 << 30},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir, err := decodePageDir(data)
		if err != nil {
			return
		}
		// Valid decodes re-encode to a decodable directory with the same
		// entries (encode sorts, so compare as maps).
		dir2, err := decodePageDir(encodePageDir(dir))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(dir, dir2) {
			t.Fatalf("round trip changed directory: %v vs %v", dir, dir2)
		}
	})
}

// Seed corpus entries exercising every frame shape keep running under
// plain `go test` (the fuzz engine only adds mutation on `make fuzz`).
func TestPageDirCodecSeeds(t *testing.T) {
	dirs := []map[string]pageRef{
		nil,
		{"s/0": {first: 0, length: 0}},
		{"s/0": {first: 3, length: 2}, "s/1": {first: 7, length: 1}},
	}
	for i, d := range dirs {
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			got, err := decodePageDir(encodePageDir(d))
			if err != nil {
				t.Fatal(err)
			}
			if len(d) == 0 && len(got) == 0 {
				return
			}
			if !reflect.DeepEqual(got, d) {
				t.Fatalf("round trip = %v, want %v", got, d)
			}
		})
	}
}
