package ckpt

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/flow"
)

// chainStages is the one-stage topology the delta-chain tests commit
// against.
func chainStages() []StageInfo { return []StageInfo{{Name: "s", Parallelism: 1}} }

// commitFull commits checkpoint id with the given key-group state as a
// full StateGroups blob.
func commitFull(t *testing.T, s *DirStore, id uint64, groups map[int][]byte) {
	t.Helper()
	if err := s.Put(id, "s", 0, flow.EncodeGroupStates(groups)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(Manifest{ID: id, MaxParallelism: 8, Stages: chainStages()}); err != nil {
		t.Fatal(err)
	}
}

// commitDelta commits checkpoint id as a delta against parent: groups are
// the dirtied groups' replacement frames, dropped the tombstoned ones.
func commitDelta(t *testing.T, s *DirStore, id, parent uint64, groups map[int][]byte, dropped []int) {
	t.Helper()
	if blob := flow.EncodeGroupDeltas(groups, dropped); blob != nil {
		if err := s.Put(id, "s", 0, blob); err != nil {
			t.Fatal(err)
		}
	}
	m := Manifest{ID: id, MaxParallelism: 8, Stages: chainStages(), Delta: true, Parent: parent}
	if err := s.Commit(m); err != nil {
		t.Fatal(err)
	}
}

// decodeStage decodes the merged "s/0" blob of a checkpoint into its
// per-group frames (nil for no state).
func decodeStage(t *testing.T, s *DirStore, id uint64) map[int]string {
	t.Helper()
	m, err := s.readManifest(id)
	if err != nil {
		t.Fatal(err)
	}
	states, err := AllStates(s, m)
	if err != nil {
		t.Fatal(err)
	}
	blob, ok := states[StateKey("s", 0)]
	if !ok {
		return nil
	}
	frames, err := flow.DecodeGroupStates(blob)
	if err != nil {
		t.Fatalf("chk-%d state: %v", id, err)
	}
	out := make(map[int]string, len(frames))
	for _, f := range frames {
		out[f.Group] = string(f.Data)
	}
	return out
}

// A delta checkpoint's restore replays the chain: unchanged groups come
// from the base, dirtied ones from their latest frame, tombstoned ones
// disappear.
func TestDeltaChainRestoreReplaysChain(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.Retain = 10
	commitFull(t, store, 1, map[int][]byte{0: []byte("a0"), 1: []byte("b0"), 2: []byte("c0")})
	commitDelta(t, store, 2, 1, map[int][]byte{1: []byte("b1")}, nil)      // group 1 rewritten
	commitDelta(t, store, 3, 2, map[int][]byte{3: []byte("d1")}, []int{2}) // group 3 born, 2 emptied
	commitDelta(t, store, 4, 3, map[int][]byte{0: []byte("a2")}, nil)      // group 0 rewritten

	want := map[int]string{0: "a2", 1: "b1", 3: "d1"}
	if got := decodeStage(t, store, 4); !reflect.DeepEqual(got, want) {
		t.Fatalf("chain replay = %v, want %v", got, want)
	}
	// The manifest records the full replay chain, and a reopened store
	// replays it identically from disk alone.
	m, err := store.readManifest(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Chain, []uint64{1, 2, 3, 4}) {
		t.Fatalf("manifest chain = %v", m.Chain)
	}
	reopened, err := NewDirStore(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeStage(t, reopened, 4); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened chain replay = %v, want %v", got, want)
	}
}

// Retention must keep every element of a retained checkpoint's chain
// alive, even past the Retain horizon: dropping the full base would make
// the chain unreplayable.
func TestDeltaChainRetentionKeepsChain(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	commitFull(t, store, 1, map[int][]byte{0: []byte("a0")})
	for id := uint64(2); id <= 5; id++ {
		commitDelta(t, store, id, id-1, map[int][]byte{0: []byte{byte(id)}}, nil)
	}
	// Retain is 2, but ids 1..5 form one chain: all must survive.
	ids, err := store.list()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []uint64{1, 2, 3, 4, 5}) {
		t.Fatalf("retained %v, want the whole chain", ids)
	}
	// A fresh full checkpoint cuts the cord; the next commit may collect
	// the old chain except the still-retained predecessor's closure.
	commitFull(t, store, 6, map[int][]byte{0: []byte("f")})
	commitFull(t, store, 7, map[int][]byte{0: []byte("g")})
	ids, err = store.list()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []uint64{6, 7}) {
		t.Fatalf("retained %v after full checkpoints, want [6 7]", ids)
	}
}

// Background compaction folds a threshold-length chain into a new full
// base: same restored state, manifest rewritten full, chain elements
// collectable afterwards.
func TestCompactionFoldsChain(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.CompactThreshold = 3
	commitFull(t, store, 1, map[int][]byte{0: []byte("a0"), 1: []byte("b0")})
	commitDelta(t, store, 2, 1, map[int][]byte{0: []byte("a1")}, []int{1})
	commitDelta(t, store, 3, 2, map[int][]byte{2: []byte("c0")}, nil)
	store.WaitCompaction()

	want := map[int]string{0: "a1", 2: "c0"}
	m, err := store.readManifest(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delta || m.Parent != 0 || m.Chain != nil {
		t.Fatalf("compacted manifest still a delta: %+v", m)
	}
	if _, err := os.Stat(filepath.Join(store.ckptDir(3), fullStateName)); err != nil {
		t.Fatalf("no %s after compaction: %v", fullStateName, err)
	}
	if got := decodeStage(t, store, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("compacted state = %v, want %v", got, want)
	}
	// The fold re-bases the chain: a follow-up delta chains onto 3 alone,
	// and the pre-fold elements become collectable.
	commitDelta(t, store, 4, 3, map[int][]byte{0: []byte("a2")}, nil)
	m, err = store.readManifest(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Chain, []uint64{3, 4}) {
		t.Fatalf("post-compaction chain = %v, want [3 4]", m.Chain)
	}
	if got, want := decodeStage(t, store, 4), (map[int]string{0: "a2", 2: "c0"}); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compaction replay = %v, want %v", got, want)
	}
}

// Kill-during-compaction recovery: compaction performs two atomic renames
// (merged state, then manifest). A process killed before, between, or
// after them must leave a directory a fresh store restores identically
// from. The between window is the interesting one — the full state file
// already exists while the manifest still replays the chain — and is only
// equivalent because the merge writes explicit-empty markers for keys the
// chain emptied.
func TestCompactionKillWindows(t *testing.T) {
	want := map[int]string{0: "a1", 2: "c0"}
	build := func(t *testing.T) *DirStore {
		store, err := NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		store.Retain = 10
		commitFull(t, store, 1, map[int][]byte{0: []byte("a0"), 1: []byte("b0")})
		commitDelta(t, store, 2, 1, map[int][]byte{0: []byte("a1")}, []int{1})
		commitDelta(t, store, 3, 2, map[int][]byte{2: []byte("c0")}, nil)
		return store
	}
	reopenAndCheck := func(t *testing.T, dir string) {
		t.Helper()
		reopened, err := NewDirStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got := decodeStage(t, reopened, 3); !reflect.DeepEqual(got, want) {
			t.Fatalf("restored state = %v, want %v", got, want)
		}
		// Recovery must also keep writing: a delta on top of the surviving
		// chain (or fresh base) still replays.
		commitDelta(t, reopened, 4, 3, map[int][]byte{0: []byte("a2")}, nil)
		after := map[int]string{0: "a2", 2: "c0"}
		if got := decodeStage(t, reopened, 4); !reflect.DeepEqual(got, after) {
			t.Fatalf("post-recovery delta replay = %v, want %v", got, after)
		}
	}

	t.Run("before_state_rename", func(t *testing.T) {
		store := build(t)
		// The kill left a partially written merge temp file behind.
		tmp := filepath.Join(store.ckptDir(3), fullStateName+".tmp")
		if err := os.WriteFile(tmp, []byte("torn half-written merge"), 0o644); err != nil {
			t.Fatal(err)
		}
		reopenAndCheck(t, store.Dir())
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Fatalf("interrupted merge temp not swept: %v", err)
		}
	})

	t.Run("between_renames", func(t *testing.T) {
		store := build(t)
		manifest := filepath.Join(store.ckptDir(3), manifestName)
		pre, err := os.ReadFile(manifest)
		if err != nil {
			t.Fatal(err)
		}
		// Run the real compaction, then restore the pre-fold (delta)
		// manifest: exactly the on-disk state of a kill after the state
		// rename and before the manifest rename.
		if err := store.compact(3, []uint64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(manifest, pre, 0o644); err != nil {
			t.Fatal(err)
		}
		reopenAndCheck(t, store.Dir())
	})

	t.Run("after_manifest_rename", func(t *testing.T) {
		store := build(t)
		if err := store.compact(3, []uint64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		reopenAndCheck(t, store.Dir())
	})
}

// The between-renames window with a chain that empties a stage's state
// entirely: the merged full file must explicitly mark the key empty, or a
// reader preferring it would fall back to nothing while the chain says
// "empty" — here the stronger claim, byte-level equivalence, is checked
// via AllStates filtering the marker out.
func TestCompactionEmptyStateMarker(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.Retain = 10
	commitFull(t, store, 1, map[int][]byte{0: []byte("a0")})
	commitDelta(t, store, 2, 1, nil, []int{0}) // everything emptied
	if err := store.compact(2, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	m, err := store.readManifest(2)
	if err != nil {
		t.Fatal(err)
	}
	states, err := AllStates(store, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 {
		t.Fatalf("emptied stage restored state %v", states)
	}
	// The marker exists on disk (States reads the full file raw).
	raw, err := store.States(2)
	if err != nil {
		t.Fatal(err)
	}
	if blob := raw[StateKey("s", 0)]; len(blob) != 1 || blob[0] != flow.StateGroups {
		t.Fatalf("merged full file blob = %v, want explicit-empty marker", blob)
	}
}
