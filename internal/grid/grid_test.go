package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func TestKeyOf(t *testing.T) {
	// Paper example (Fig. 4): o5 = (4, 8), lg = 3 -> key <1, 2>.
	if got := KeyOf(geo.Point{X: 4, Y: 8}, 3); got != (Key{1, 2}) {
		t.Errorf("KeyOf = %v, want <1,2>", got)
	}
	if got := KeyOf(geo.Point{X: -0.5, Y: 0}, 1); got != (Key{-1, 0}) {
		t.Errorf("negative coords: %v, want <-1,0>", got)
	}
	if got := KeyOf(geo.Point{X: 2.999, Y: 3.0}, 3); got != (Key{0, 1}) {
		t.Errorf("boundary: %v, want <0,1>", got)
	}
}

func TestKeyString(t *testing.T) {
	if got := (Key{1, 2}).String(); got != "<1,2>" {
		t.Errorf("String = %q", got)
	}
}

func TestKeyHashSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for x := int32(-20); x < 20; x++ {
		for y := int32(-20); y < 20; y++ {
			seen[(Key{x, y}).Hash()] = true
		}
	}
	if len(seen) != 1600 {
		t.Errorf("hash collisions: %d distinct of 1600", len(seen))
	}
}

func TestCellRectContainsPoint(t *testing.T) {
	f := func(px, py int16) bool {
		p := geo.Point{X: float64(px) / 7, Y: float64(py) / 7}
		lg := 2.5
		return CellRect(KeyOf(p, lg), lg).Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocateUpperHalfPaperExample(t *testing.T) {
	// Paper (Section 5.2): o9 replicated as data object into g10 (<1,1>)
	// and — without Lemma 1 — query objects into g5, g6, g9 (plus its own
	// cell). With Lemma 1, only the UPPER half: y in [floor(y/lg),
	// floor((y+eps)/lg)].
	// Construct a point near a corner so its eps-region spans 4 cells:
	// lg = 3, o = (3.5, 3.5), eps = 1 -> region x: [2.5, 4.5], y: [2.5, 4.5]
	// cells <0..1, 0..1>; upper half y: [3.5, 4.5] -> y cell 1 only.
	loc := geo.Point{X: 3.5, Y: 3.5}
	var data, query []Key
	Allocate(7, loc, 3, 1, UpperHalf, func(o Object) {
		if o.Index != 7 || o.Loc != loc {
			t.Errorf("object payload mangled: %+v", o)
		}
		if o.Query {
			query = append(query, o.Key)
		} else {
			data = append(data, o.Key)
		}
	})
	if len(data) != 1 || data[0] != (Key{1, 1}) {
		t.Errorf("data = %v, want [<1,1>]", data)
	}
	if len(query) != 1 || query[0] != (Key{0, 1}) {
		t.Errorf("upper-half query = %v, want [<0,1>]", query)
	}

	query = nil
	Allocate(7, loc, 3, 1, FullRegion, func(o Object) {
		if o.Query {
			query = append(query, o.Key)
		}
	})
	if len(query) != 3 {
		t.Errorf("full-region query = %v, want 3 cells", query)
	}
}

func TestAllocateNoDuplicateKeys(t *testing.T) {
	f := func(px, py int16, epsRaw, lgRaw uint8) bool {
		lg := 0.5 + float64(lgRaw)/16
		eps := 0.1 + float64(epsRaw)/32
		p := geo.Point{X: float64(px) / 9, Y: float64(py) / 9}
		for _, mode := range []Mode{UpperHalf, FullRegion} {
			seen := map[Key]int{}
			dataCount := 0
			Allocate(0, p, lg, eps, mode, func(o Object) {
				seen[o.Key]++
				if !o.Query {
					dataCount++
					if o.Key != KeyOf(p, lg) {
						return
					}
				}
			})
			if dataCount != 1 {
				return false
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Lemma 1 coverage: for any two points within eps (L-inf square), either
// they share a cell, or one of them emits a query object into the other's
// data cell. This is exactly the property that makes the upper-half range
// join complete.
func TestLemma1Coverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lg := 0.5 + rng.Float64()*3
		eps := 0.05 + rng.Float64()*1.5
		a := geo.Point{X: rng.Float64()*20 - 10, Y: rng.Float64()*20 - 10}
		b := geo.Point{
			X: a.X + (rng.Float64()*2-1)*eps,
			Y: a.Y + (rng.Float64()*2-1)*eps,
		}
		if math.Abs(a.X-b.X) > eps || math.Abs(a.Y-b.Y) > eps {
			return true
		}
		ka, kb := KeyOf(a, lg), KeyOf(b, lg)
		if ka == kb {
			return true
		}
		aQueriesB := false
		Allocate(0, a, lg, eps, UpperHalf, func(o Object) {
			if o.Query && o.Key == kb {
				aQueriesB = true
			}
		})
		bQueriesA := false
		Allocate(1, b, lg, eps, UpperHalf, func(o Object) {
			if o.Query && o.Key == ka {
				bQueriesA = true
			}
		})
		return aQueriesB || bQueriesA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQueryCellCount(t *testing.T) {
	// Full region around a cell-interior point spans at least as many cells
	// as the upper half.
	p := geo.Point{X: 10.1, Y: 10.1}
	up := QueryCellCount(p, 1, 2.5, UpperHalf)
	full := QueryCellCount(p, 1, 2.5, FullRegion)
	if up >= full {
		t.Errorf("upper half (%d) should replicate less than full (%d)", up, full)
	}
}

func TestAllocateZeroWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("lg = 0 should panic")
		}
	}()
	Allocate(0, geo.Point{}, 0, 1, UpperHalf, func(Object) {})
}
