// Package grid implements the global layer of the GR-index (Section 5.1):
// cell key computation, the GridObject replication of Definition 12, and the
// GridAllocate algorithm (Algorithm 1) with Lemma 1's upper-half pruning.
//
// A location o is assigned the primary key <floor(o.x/lg), floor(o.y/lg)>.
// For a range join with threshold eps, o is replicated as a *data object*
// into its own cell and as *query objects* into the other cells intersecting
// the upper half of its range region [x-eps, x+eps] x [y, y+eps]; Lemma 1
// proves no join result is missed and no pair is reported twice.
package grid

import (
	"fmt"
	"math"

	"repro/internal/geo"
)

// Key identifies one grid cell.
type Key struct {
	X, Y int32
}

func (k Key) String() string { return fmt.Sprintf("<%d,%d>", k.X, k.Y) }

// Hash returns a well-mixed 64-bit hash of the key, used to route cells to
// parallel subtasks.
func (k Key) Hash() uint64 {
	h := uint64(uint32(k.X))<<32 | uint64(uint32(k.Y))
	// SplitMix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// KeyOf returns the cell key of p for grid cell width lg.
func KeyOf(p geo.Point, lg float64) Key {
	return Key{
		X: int32(math.Floor(p.X / lg)),
		Y: int32(math.Floor(p.Y / lg)),
	}
}

// CellRect returns the half-open cell rectangle [X*lg, (X+1)*lg) x
// [Y*lg, (Y+1)*lg) as a closed geo.Rect for intersection tests.
func CellRect(k Key, lg float64) geo.Rect {
	return geo.Rect{
		MinX: float64(k.X) * lg,
		MinY: float64(k.Y) * lg,
		MaxX: float64(k.X+1) * lg,
		MaxY: float64(k.Y+1) * lg,
	}
}

// Object is the GridObject of Definition 12: a location replicated into a
// cell, flagged as a data object (Query=false, to be indexed) or a query
// object (Query=true, to be probed only).
type Object struct {
	Key   Key
	Query bool
	// Index is the caller's handle for the location (e.g. the position in
	// the snapshot).
	Index int32
	Loc   geo.Point
}

// Mode selects the replication strategy.
type Mode int

const (
	// UpperHalf replicates query objects only into cells intersecting the
	// upper half of the range region (Lemma 1; used by RJC).
	UpperHalf Mode = iota
	// FullRegion replicates query objects into every cell intersecting the
	// full range region (the SRJ baseline; produces duplicate results that
	// must be de-duplicated downstream).
	FullRegion
)

// Allocate implements Algorithm 1 for one location: it emits the data
// object for the location's own cell, then one query object per additional
// cell determined by the mode. emit is called once per GridObject.
func Allocate(idx int32, loc geo.Point, lg, eps float64, mode Mode, emit func(Object)) {
	if lg <= 0 {
		panic("grid: cell width must be positive")
	}
	home := KeyOf(loc, lg)
	emit(Object{Key: home, Query: false, Index: idx, Loc: loc})

	x0 := int32(math.Floor((loc.X - eps) / lg))
	x1 := int32(math.Floor((loc.X + eps) / lg))
	var y0 int32
	if mode == UpperHalf {
		y0 = int32(math.Floor(loc.Y / lg))
	} else {
		y0 = int32(math.Floor((loc.Y - eps) / lg))
	}
	y1 := int32(math.Floor((loc.Y + eps) / lg))
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			k := Key{X: x, Y: y}
			if k == home {
				continue
			}
			emit(Object{Key: k, Query: true, Index: idx, Loc: loc})
		}
	}
}

// QueryCellCount returns how many query objects Allocate emits for a
// location, useful for replication-factor statistics.
func QueryCellCount(loc geo.Point, lg, eps float64, mode Mode) int {
	n := 0
	Allocate(0, loc, lg, eps, mode, func(o Object) {
		if o.Query {
			n++
		}
	})
	return n
}
