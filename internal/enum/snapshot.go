// Checkpoint state serialization for the enumerators (ckpt.Snapshotter).
// Each enumerator's keyed state is encoded with the compact varint framing
// the wire codecs use (flow.Dec), prefixed by a method tag so restoring a
// blob into the wrong enumerator type fails loudly instead of corrupting
// the stream. Construction-time configuration (owner, constraints, window
// geometry) is NOT part of the state: a restore always happens into an
// enumerator freshly built by the same NewFunc the original run used.
package enum

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/bitstr"
	"repro/internal/ckpt"
	"repro/internal/flow"
	"repro/internal/model"
)

// All enumerators are checkpointable: their keyed state survives worker
// crashes through the aligned-barrier protocol.
var (
	_ ckpt.Snapshotter = (*BA)(nil)
	_ ckpt.Snapshotter = (*FBA)(nil)
	_ ckpt.Snapshotter = (*VBA)(nil)
)

// Method tags heading each enumerator state blob.
const (
	stateTagBA  = 'B'
	stateTagFBA = 'F'
	stateTagVBA = 'V'
)

// AppendPartition encodes one partition (tick, owner, members); the
// inverse of DecodePartition. Shared with the enumeration operator's
// reorder-buffer snapshot.
func AppendPartition(buf []byte, p Partition) []byte {
	buf = binary.AppendVarint(buf, int64(p.Tick))
	buf = binary.AppendUvarint(buf, uint64(p.Owner))
	return appendIDs(buf, p.Members)
}

// DecodePartition decodes one partition encoded by AppendPartition.
func DecodePartition(d *flow.Dec) Partition {
	return Partition{
		Tick:    model.Tick(d.Varint()),
		Owner:   model.ObjectID(d.Uvarint()),
		Members: decodeIDs(d),
	}
}

func appendIDs(buf []byte, ids []model.ObjectID) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	return buf
}

func decodeIDs(d *flow.Dec) []model.ObjectID {
	n := int(d.Uvarint())
	if n == 0 {
		return nil
	}
	if n < 0 || n > d.Remaining() { // every id takes at least one byte
		d.Failf("id count %d exceeds payload", n)
		return nil
	}
	ids := make([]model.ObjectID, n)
	for i := range ids {
		ids[i] = model.ObjectID(d.Uvarint())
	}
	return ids
}

// appendBits encodes a bit string as its length plus packed bytes
// (LSB-first within each byte).
func appendBits(buf []byte, b *bitstr.Bits) []byte {
	n := b.Len()
	buf = binary.AppendUvarint(buf, uint64(n))
	var cur byte
	for i := 0; i < n; i++ {
		if b.Get(i) {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	if n%8 != 0 {
		buf = append(buf, cur)
	}
	return buf
}

func decodeBits(d *flow.Dec) *bitstr.Bits {
	n := int(d.Uvarint())
	packed := d.Bytes((n + 7) / 8)
	if packed == nil && n > 0 {
		// Truncated or oversized length prefix: Dec carries the sticky
		// error; do not allocate on the untrusted n.
		return bitstr.New(0)
	}
	b := bitstr.New(n)
	for i := 0; i < n; i++ {
		if packed[i/8]&(1<<(i%8)) != 0 {
			b.Set(i)
		}
	}
	return b
}

// appendWindowed encodes the shared sliding-window state of BA and FBA:
// the history entries and the pending (not yet evaluated) window bases.
// eta and lookback are construction-time configuration and excluded.
func appendWindowed(buf []byte, w *windowed) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(w.hist.entries)))
	for _, e := range w.hist.entries {
		buf = binary.AppendVarint(buf, int64(e.tick))
		buf = appendIDs(buf, e.ids)
	}
	buf = binary.AppendUvarint(buf, uint64(len(w.pending)))
	for _, p := range w.pending {
		buf = AppendPartition(buf, p)
	}
	return buf
}

func decodeWindowed(d *flow.Dec, w *windowed) {
	nh := int(d.Uvarint())
	w.hist.entries = nil
	for i := 0; i < nh && d.Err() == nil; i++ {
		tick := model.Tick(d.Varint())
		ids := decodeIDs(d)
		members := make(map[model.ObjectID]struct{}, len(ids))
		for _, id := range ids {
			members[id] = struct{}{}
		}
		w.hist.entries = append(w.hist.entries, tickSet{tick: tick, ids: ids, members: members})
	}
	np := int(d.Uvarint())
	w.pending = nil
	for i := 0; i < np && d.Err() == nil; i++ {
		w.pending = append(w.pending, DecodePartition(d))
	}
}

func checkTag(d *flow.Dec, want byte, name string) error {
	if got := d.Byte(); got != want {
		return fmt.Errorf("enum: %s state blob has tag %q", name, got)
	}
	return nil
}

// SnapshotState implements ckpt.Snapshotter.
func (f *FBA) SnapshotState() ([]byte, error) {
	if len(f.w.hist.entries) == 0 && len(f.w.pending) == 0 {
		return nil, nil
	}
	return appendWindowed([]byte{stateTagFBA}, &f.w), nil
}

// RestoreState implements ckpt.Snapshotter.
func (f *FBA) RestoreState(data []byte) error {
	d := flow.NewDec(data)
	if err := checkTag(d, stateTagFBA, "FBA"); err != nil {
		return err
	}
	decodeWindowed(d, &f.w)
	return d.Err()
}

// SnapshotState implements ckpt.Snapshotter.
func (b *BA) SnapshotState() ([]byte, error) {
	if len(b.w.hist.entries) == 0 && len(b.w.pending) == 0 && !b.Overflowed {
		return nil, nil
	}
	buf := []byte{stateTagBA}
	if b.Overflowed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return appendWindowed(buf, &b.w), nil
}

// RestoreState implements ckpt.Snapshotter.
func (b *BA) RestoreState(data []byte) error {
	d := flow.NewDec(data)
	if err := checkTag(d, stateTagBA, "BA"); err != nil {
		return err
	}
	b.Overflowed = d.Byte() == 1
	decodeWindowed(d, &b.w)
	return d.Err()
}

// SnapshotState implements ckpt.Snapshotter.
func (v *VBA) SnapshotState() ([]byte, error) {
	if !v.started && len(v.open) == 0 && len(v.cands) == 0 {
		return nil, nil
	}
	buf := []byte{stateTagVBA}
	if v.started {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendVarint(buf, int64(v.lastTick))
	ids := make([]model.ObjectID, 0, len(v.open))
	for id := range v.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		e := v.open[id]
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = binary.AppendVarint(buf, int64(e.start))
		buf = appendBits(buf, &e.bits)
	}
	buf = binary.AppendUvarint(buf, uint64(len(v.cands)))
	for _, c := range v.cands {
		buf = binary.AppendUvarint(buf, uint64(c.id))
		buf = binary.AppendVarint(buf, int64(c.start))
		buf = binary.AppendVarint(buf, int64(c.end))
		buf = appendBits(buf, c.bits)
	}
	return buf, nil
}

// RestoreState implements ckpt.Snapshotter.
func (v *VBA) RestoreState(data []byte) error {
	d := flow.NewDec(data)
	if err := checkTag(d, stateTagVBA, "VBA"); err != nil {
		return err
	}
	v.started = d.Byte() == 1
	v.lastTick = model.Tick(d.Varint())
	v.open = make(map[model.ObjectID]*vEntry)
	no := int(d.Uvarint())
	for i := 0; i < no && d.Err() == nil; i++ {
		id := model.ObjectID(d.Uvarint())
		e := &vEntry{start: model.Tick(d.Varint())}
		e.bits = *decodeBits(d)
		v.open[id] = e
	}
	v.cands = nil
	nc := int(d.Uvarint())
	for i := 0; i < nc && d.Err() == nil; i++ {
		c := vCand{
			id:    model.ObjectID(d.Uvarint()),
			start: model.Tick(d.Varint()),
			end:   model.Tick(d.Varint()),
		}
		c.bits = decodeBits(d)
		v.cands = append(v.cands, c)
	}
	return d.Err()
}
