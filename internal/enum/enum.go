// Package enum implements the pattern-enumeration phase of ICPE
// (Section 6): id-based partitioning of cluster snapshots, the exponential
// Baseline (Algorithm 3), the fixed-length bit compression method FBA
// (Algorithm 4), and the variable-length bit compression method VBA
// (Algorithm 5), together with an offline oracle used for cross-validation.
//
// # Output semantics
//
// All enumerators report patterns (O, T) with |O| >= M and T a valid time
// sequence under (K, L, G) during which every member of O shares a cluster.
// They differ — exactly as the paper describes — in which witness T they
// attach and when they report:
//
//   - BA and FBA evaluate a window of eta snapshots per start tick and
//     report a pattern at the first tick of each of its maximal sequences,
//     with the witness truncated to the window (low latency).
//   - VBA reports each maximal pattern time sequence (Definition 15) once,
//     when Lemma 7 finalizes it (higher latency, higher throughput).
//
// Cross-method tests therefore compare reported object sets and validate
// every witness, and additionally check VBA's output against the oracle's
// maximal sequences.
package enum

import (
	"sort"

	"repro/internal/model"
)

// Partition is P_t(o) (Section 6.1): the trajectories sharing a cluster
// with owner o at tick t whose ids exceed o's. The owner itself is implicit.
type Partition struct {
	Tick    model.Tick
	Owner   model.ObjectID
	Members []model.ObjectID // sorted ascending, all > Owner
}

// PartitionClusters converts one cluster snapshot into id-based partitions,
// discarding clusters smaller than M (Lemma 3). Every member o of a
// surviving cluster yields a partition owned by o holding the members with
// larger ids — including the cluster's maximum id, whose partition is empty
// but still marks the owner's cluster membership at this tick.
func PartitionClusters(cs *model.ClusterSnapshot, m int) []Partition {
	var out []Partition
	for _, c := range cs.Clusters {
		if len(c) < m {
			continue
		}
		// Clusters are sorted ascending.
		for i, owner := range c {
			out = append(out, Partition{
				Tick:    cs.Tick,
				Owner:   owner,
				Members: c[i+1:],
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
	return out
}

// Emit receives detected patterns.
type Emit func(model.Pattern)

// Enumerator is one owner-subtask's pattern enumeration state. Partitions
// must arrive in strictly increasing tick order; ticks at which the owner
// is unclustered are simply absent.
type Enumerator interface {
	// Name identifies the method ("BA", "FBA", "VBA").
	Name() string
	// Process ingests the owner's partition for one tick.
	Process(p Partition, emit Emit)
	// Flush finalizes all pending state at stream end.
	Flush(emit Emit)
}

// NewFunc constructs a fresh enumerator for one owner subtask.
type NewFunc func(owner model.ObjectID, c model.Constraints) Enumerator

// tickSet is one tick's membership within a subtask's history. The sorted
// id slice is retained beside the lookup map so checkpoint serialization
// walks it directly instead of re-sorting map keys on every barrier.
type tickSet struct {
	tick    model.Tick
	ids     []model.ObjectID // sorted ascending (Partition order)
	members map[model.ObjectID]struct{}
}

func newTickSet(p Partition) tickSet {
	m := make(map[model.ObjectID]struct{}, len(p.Members))
	for _, id := range p.Members {
		m[id] = struct{}{}
	}
	return tickSet{tick: p.Tick, ids: p.Members, members: m}
}

// history is a sliding window of tickSets shared by the windowed
// enumerators (BA, FBA).
type history struct {
	entries []tickSet
}

func (h *history) add(t tickSet) {
	h.entries = append(h.entries, t)
}

// at returns the membership set for a tick, or nil when the owner was
// unclustered then.
func (h *history) at(tick model.Tick) map[model.ObjectID]struct{} {
	i := sort.Search(len(h.entries), func(i int) bool {
		return h.entries[i].tick >= tick
	})
	if i < len(h.entries) && h.entries[i].tick == tick {
		return h.entries[i].members
	}
	return nil
}

// contains reports whether id was a co-cluster member at tick.
func (h *history) contains(tick model.Tick, id model.ObjectID) bool {
	m := h.at(tick)
	if m == nil {
		return false
	}
	_, ok := m[id]
	return ok
}

// containsAll reports whether every id in set was a member at tick.
func (h *history) containsAll(tick model.Tick, set []model.ObjectID) bool {
	m := h.at(tick)
	if m == nil {
		return false
	}
	for _, id := range set {
		if _, ok := m[id]; !ok {
			return false
		}
	}
	return true
}

// dropBefore discards entries older than tick.
func (h *history) dropBefore(tick model.Tick) {
	i := 0
	for i < len(h.entries) && h.entries[i].tick < tick {
		i++
	}
	if i > 0 {
		h.entries = append(h.entries[:0], h.entries[i:]...)
	}
}

// windowed drives per-start-tick evaluation for BA and FBA: every incoming
// partition opens a window that is evaluated once eta ticks have passed (or
// at flush). lookback ticks before each window base are retained so the
// evaluator can verify that the base truly starts a chain — a usable run
// ending within G ticks before the base means an earlier window already
// reported the pattern.
type windowed struct {
	eta      int
	lookback int
	hist     history
	pending  []Partition // windows whose eta ticks have not all arrived
}

// advance ingests a partition and returns the windows that are now ready
// for evaluation (all their eta ticks are in the past or present). History
// is pruned relative to the oldest window still needing it — including the
// ready ones the caller is about to evaluate.
func (w *windowed) advance(p Partition) []Partition {
	w.hist.add(newTickSet(p))
	w.pending = append(w.pending, p)
	var ready []Partition
	for len(w.pending) > 0 &&
		w.pending[0].Tick+model.Tick(w.eta)-1 <= p.Tick {
		ready = append(ready, w.pending[0])
		w.pending = w.pending[1:]
	}
	oldest := p.Tick
	if len(w.pending) > 0 {
		oldest = w.pending[0].Tick
	}
	if len(ready) > 0 && ready[0].Tick < oldest {
		oldest = ready[0].Tick
	}
	w.hist.dropBefore(oldest - model.Tick(w.lookback))
	return ready
}

// drain returns all remaining windows (stream flush).
func (w *windowed) drain() []Partition {
	out := w.pending
	w.pending = nil
	return out
}

// patternOf assembles a normalized pattern from an owner, member subset,
// and witness ticks.
func patternOf(owner model.ObjectID, members []model.ObjectID, ticks []model.Tick) model.Pattern {
	objs := make([]model.ObjectID, 0, len(members)+1)
	objs = append(objs, owner)
	objs = append(objs, members...)
	return model.NormalizePattern(model.Pattern{Objects: objs, Times: ticks})
}
