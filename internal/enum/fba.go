package enum

import (
	"repro/internal/bitstr"
	"repro/internal/model"
)

// FBA is the Fixed-length Bit Compression based Algorithm (Algorithm 4).
// Each partition P_t(o) opens a window of eta ticks; members are compressed
// into bit strings (Definition 13), candidates are filtered by (K,L,G)
// satisfaction, and patterns are enumerated Apriori-style directly from
// cardinality M-1 with bitwise-AND intersection.
//
// # Emission rule
//
// A window with base t reports a pattern exactly when t is the start of one
// of the pattern's maximal chains: the bit strings carry G+L ticks of
// lookback, and the chain containing the base position must begin there. A
// base that merely continues a run (co-occurrence at t-1) or connects
// backward to a usable run within G ticks belongs to a chain an earlier
// window already reported; Lemma 4 guarantees the chain-start window sees a
// valid witness, so this rule removes cross-window duplicates without
// losing any pattern.
type FBA struct {
	owner model.ObjectID
	c     model.Constraints
	w     windowed
}

// fbaLookback returns the history depth needed to decide chain starts: a
// usable run ending within G ticks of the base is always fully visible
// (length-wise) within G+L ticks.
func fbaLookback(c model.Constraints) int { return c.G + c.L }

// NewFBA returns the FBA enumerator for one owner subtask.
func NewFBA(owner model.ObjectID, c model.Constraints) Enumerator {
	return &FBA{
		owner: owner,
		c:     c,
		w:     windowed{eta: c.Eta(), lookback: fbaLookback(c)},
	}
}

// Name implements Enumerator.
func (f *FBA) Name() string { return "FBA" }

// Process implements Enumerator.
func (f *FBA) Process(p Partition, emit Emit) {
	for _, base := range f.w.advance(p) {
		f.evalWindow(base, emit)
	}
}

// Flush implements Enumerator.
func (f *FBA) Flush(emit Emit) {
	for _, base := range f.w.drain() {
		f.evalWindow(base, emit)
	}
}

// chainAt returns the chain of b that starts exactly at position `at`, when
// it exists and reaches K ones. It reports false when position `at` lies
// inside a longer chain (backward-connected), in a gap, or in an unusable
// run — in all of which cases no valid sequence starting at `at` exists or
// another window owns the pattern.
func chainAt(b *bitstr.Bits, at int, c model.Constraints) (bitstr.Chain, bool) {
	for _, ch := range bitstr.Chains(b, c.L, c.G) {
		if ch.End() <= at {
			continue
		}
		if ch.Start() > at {
			return bitstr.Chain{}, false
		}
		if ch.Start() == at {
			return ch, ch.Count >= c.K
		}
		return bitstr.Chain{}, false
	}
	return bitstr.Chain{}, false
}

// candidateOK is the per-member filter (Algorithm 4 lines 7-8). It must be
// monotone under adding bits so that every member of an emittable pattern
// survives: if the pattern's bit string has a chain starting exactly at the
// base with >= K ticks, every member's (superset) string has a chain
// *covering* the base — possibly starting earlier, since the member may
// have co-clustered with the owner before the full pattern formed — whose
// at-or-after-base tick count is at least as large.
func candidateOK(b *bitstr.Bits, at int, c model.Constraints) bool {
	for _, ch := range bitstr.Chains(b, c.L, c.G) {
		if ch.End() <= at {
			continue
		}
		if ch.Start() > at {
			return false
		}
		// The chain covering `at`: count its ticks at or after `at`.
		count := 0
		for _, r := range ch.Runs {
			if r.End() <= at {
				continue
			}
			s := r.Start
			if s < at {
				s = at
			}
			count += r.End() - s
		}
		return count >= c.K
	}
	return false
}

// fbaCand is one candidate trajectory with its window bit string.
type fbaCand struct {
	id   model.ObjectID
	bits *bitstr.Bits
}

func (f *FBA) evalWindow(base Partition, emit Emit) {
	need := f.c.M - 1
	if len(base.Members) < need {
		return
	}
	eta := f.c.Eta()
	lb := fbaLookback(f.c)
	total := lb + eta
	// Build B[oi] for every member over [base.Tick-lb, base.Tick+eta)
	// (Algorithm 4 lines 2-6), keeping only candidates whose own string
	// already admits a chain starting at the base (lines 7-8, strengthened
	// to the chain-start rule every emitted pattern must satisfy).
	cands := make([]fbaCand, 0, len(base.Members))
	allContinue := true
	for _, id := range base.Members {
		b := bitstr.New(total)
		for j := 0; j < total; j++ {
			if f.w.hist.contains(base.Tick+model.Tick(j-lb), id) {
				b.Set(j)
			}
		}
		if candidateOK(b, lb, f.c) {
			cands = append(cands, fbaCand{id: id, bits: b})
			if !b.Get(lb - 1) {
				allContinue = false
			}
		}
	}
	if len(cands) < need {
		return
	}
	if allContinue {
		// Every candidate also co-clustered with the owner at base-1, so
		// every pattern's run extends backwards: the whole window is a
		// continuation and the chain-start window owns all its patterns.
		return
	}
	chosen := make([]model.ObjectID, 0, len(cands))
	f.extend(base, cands, 0, chosen, nil, emit)
}

// extend walks the candidate lattice depth-first (Algorithm 4 lines 9-17).
// prefix is the AND of the chosen candidates' bit strings (nil when empty).
// Pruning uses the monotone candidateOK test — a prefix's chain may start
// before the base while a superset's starts exactly there — and emission
// uses the exact chain-start test.
func (f *FBA) extend(base Partition, cands []fbaCand, from int,
	chosen []model.ObjectID, prefix *bitstr.Bits, emit Emit) {
	lb := fbaLookback(f.c)
	for i := from; i < len(cands); i++ {
		var b *bitstr.Bits
		if prefix == nil {
			b = cands[i].bits
		} else {
			b = bitstr.And(prefix, cands[i].bits)
		}
		if !candidateOK(b, lb, f.c) {
			continue
		}
		chosen = append(chosen, cands[i].id)
		if len(chosen) >= f.c.M-1 {
			if chain, ok := chainAt(b, lb, f.c); ok {
				f.emitPattern(base, chosen, chain, emit)
			}
		}
		f.extend(base, cands, i+1, chosen, b, emit)
		chosen = chosen[:len(chosen)-1]
	}
}

// emitPattern reports one pattern whose chain starts at the window base.
func (f *FBA) emitPattern(base Partition, members []model.ObjectID,
	chain bitstr.Chain, emit Emit) {
	lb := fbaLookback(f.c)
	pos := chain.Positions()
	ticks := make([]model.Tick, len(pos))
	for i, p := range pos {
		ticks[i] = base.Tick + model.Tick(p-lb)
	}
	emit(patternOf(f.owner, members, ticks))
}
