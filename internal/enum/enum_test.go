package enum

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/timeseq"
)

// historyOf builds a cluster history from tick -> clusters literals.
func historyOf(ticks []model.Tick, clusters [][][]model.ObjectID) []*model.ClusterSnapshot {
	if len(ticks) != len(clusters) {
		panic("historyOf: mismatched lengths")
	}
	var out []*model.ClusterSnapshot
	for i, t := range ticks {
		cs := &model.ClusterSnapshot{Tick: t}
		for _, c := range clusters[i] {
			cs.Clusters = append(cs.Clusters, model.Cluster(c))
		}
		cs.SortClusters()
		out = append(out, cs)
	}
	return out
}

// paperHistory reconstructs the running example: with M=3, K=4, L=2, G=2
// the only pattern is {4,5,6} with T = <3,4,6,7> (Section 3.1).
func paperHistory() []*model.ClusterSnapshot {
	return historyOf(
		[]model.Tick{1, 2, 3, 4, 5, 6, 7, 8},
		[][][]model.ObjectID{
			{{4, 5, 6, 7}},
			{{4, 5}, {6, 7}},
			{{4, 5, 6, 7, 8}},
			{{4, 5, 6}},
			{{4, 5}, {6, 7}},
			{{4, 5, 6}},
			{{4, 5, 6, 7}},
			{},
		},
	)
}

func paperConstraints() model.Constraints {
	return model.Constraints{M: 3, K: 4, L: 2, G: 2}
}

func TestPartitionClusters(t *testing.T) {
	cs := &model.ClusterSnapshot{
		Tick:     1,
		Clusters: []model.Cluster{{1, 2}, {3, 4}, {5, 6, 7}},
	}
	ps := PartitionClusters(cs, 2)
	want := []Partition{
		{Tick: 1, Owner: 1, Members: []model.ObjectID{2}},
		{Tick: 1, Owner: 2, Members: []model.ObjectID{}},
		{Tick: 1, Owner: 3, Members: []model.ObjectID{4}},
		{Tick: 1, Owner: 4, Members: []model.ObjectID{}},
		{Tick: 1, Owner: 5, Members: []model.ObjectID{6, 7}},
		{Tick: 1, Owner: 6, Members: []model.ObjectID{7}},
		{Tick: 1, Owner: 7, Members: []model.ObjectID{}},
	}
	if len(ps) != len(want) {
		t.Fatalf("partitions = %+v", ps)
	}
	for i := range want {
		if ps[i].Owner != want[i].Owner || ps[i].Tick != want[i].Tick ||
			len(ps[i].Members) != len(want[i].Members) {
			t.Errorf("partition %d = %+v, want %+v", i, ps[i], want[i])
			continue
		}
		for j := range want[i].Members {
			if ps[i].Members[j] != want[i].Members[j] {
				t.Errorf("partition %d members = %v", i, ps[i].Members)
			}
		}
	}
}

func TestPartitionClustersLemma3(t *testing.T) {
	cs := &model.ClusterSnapshot{
		Tick:     1,
		Clusters: []model.Cluster{{1, 2}, {5, 6, 7}},
	}
	// M=3 discards the pair cluster entirely (Lemma 3).
	ps := PartitionClusters(cs, 3)
	if len(ps) != 3 {
		t.Fatalf("partitions = %+v", ps)
	}
	for _, p := range ps {
		if p.Owner == 1 || p.Owner == 2 {
			t.Errorf("cluster below M leaked partition for %d", p.Owner)
		}
	}
}

func TestOraclePaperExample(t *testing.T) {
	res := Oracle(paperHistory(), paperConstraints())
	if len(res.Patterns) != 1 {
		t.Fatalf("oracle patterns = %v", res.Patterns)
	}
	p := res.Patterns[0]
	if p.Key() != "4,5,6" {
		t.Errorf("pattern objects = %v", p.Objects)
	}
	want := []model.Tick{3, 4, 6, 7}
	if !reflect.DeepEqual(p.Times, want) {
		t.Errorf("pattern times = %v, want %v", p.Times, want)
	}
}

func runMethod(hist []*model.ClusterSnapshot, c model.Constraints, mk NewFunc) []model.Pattern {
	return NewDriver(c, mk).Run(hist)
}

func TestAllMethodsPaperExample(t *testing.T) {
	hist := paperHistory()
	c := paperConstraints()
	for name, mk := range map[string]NewFunc{
		"BA": NewBA, "FBA": NewFBA, "VBA": NewVBA,
	} {
		got := runMethod(hist, c, mk)
		if len(got) != 1 || got[0].Key() != "4,5,6" {
			t.Errorf("%s patterns = %v, want one {4,5,6}", name, got)
			continue
		}
		if !timeseq.IsValid(timeseq.Seq(got[0].Times), c) {
			t.Errorf("%s witness %v invalid", name, got[0].Times)
		}
		if got[0].Times[0] != 3 {
			t.Errorf("%s witness starts at %d, want 3", name, got[0].Times[0])
		}
	}
}

// checkWitness verifies that every tick of a pattern's witness has all its
// objects in one cluster, and that the witness satisfies the constraints.
func checkWitness(t *testing.T, name string, hist []*model.ClusterSnapshot,
	c model.Constraints, p model.Pattern) {
	t.Helper()
	if len(p.Objects) < c.M {
		t.Errorf("%s: pattern %v below significance", name, p)
	}
	if !timeseq.IsValid(timeseq.Seq(p.Times), c) {
		t.Errorf("%s: witness %v violates (K,L,G)", name, p)
	}
	byTick := map[model.Tick]*model.ClusterSnapshot{}
	for _, cs := range hist {
		byTick[cs.Tick] = cs
	}
	for _, tick := range p.Times {
		cs := byTick[tick]
		if cs == nil {
			t.Errorf("%s: witness tick %d has no snapshot", name, tick)
			return
		}
		ok := false
		for _, cl := range cs.Clusters {
			members := map[model.ObjectID]bool{}
			for _, id := range cl {
				members[id] = true
			}
			all := true
			for _, id := range p.Objects {
				if !members[id] {
					all = false
					break
				}
			}
			if all {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: pattern %v not co-clustered at tick %d", name, p, tick)
			return
		}
	}
}

// genHistory generates a random cluster history over a small universe.
func genHistory(rng *rand.Rand, nObjects, nTicks int) []*model.ClusterSnapshot {
	var out []*model.ClusterSnapshot
	for t := 1; t <= nTicks; t++ {
		if rng.Intn(8) == 0 {
			continue // owner-less tick: nobody clustered
		}
		cs := &model.ClusterSnapshot{Tick: model.Tick(t)}
		// Randomly assign each object to one of a few clusters or noise.
		nClusters := 1 + rng.Intn(2)
		buckets := make([][]model.ObjectID, nClusters)
		for id := 1; id <= nObjects; id++ {
			b := rng.Intn(nClusters + 1)
			if b == nClusters {
				continue // noise
			}
			buckets[b] = append(buckets[b], model.ObjectID(id))
		}
		for _, b := range buckets {
			if len(b) >= 2 {
				cs.Clusters = append(cs.Clusters, model.Cluster(b))
			}
		}
		cs.SortClusters()
		out = append(out, cs)
	}
	return out
}

func genConstraints(rng *rand.Rand) model.Constraints {
	c := model.Constraints{
		M: 2 + rng.Intn(3),
		K: 2 + rng.Intn(4),
		L: 1 + rng.Intn(3),
		G: 1 + rng.Intn(3),
	}
	if c.L > c.K {
		c.L = c.K
	}
	return c
}

func patternsEqual(a, b []model.Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() || !reflect.DeepEqual(a[i].Times, b[i].Times) {
			return false
		}
	}
	return true
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestCrossValidation is the central equivalence suite: on random cluster
// histories, BA == FBA exactly, VBA == oracle exactly (maximal sequences),
// every method finds the same object sets as the oracle, and every emitted
// witness is genuinely valid.
func TestCrossValidation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hist := genHistory(rng, 5+rng.Intn(4), 10+rng.Intn(20))
		c := genConstraints(rng)

		oracle := Oracle(hist, c)
		ba := runMethod(hist, c, NewBA)
		fba := runMethod(hist, c, NewFBA)
		vba := runMethod(hist, c, NewVBA)

		if !patternsEqual(ba, fba) {
			t.Logf("seed %d %v: BA != FBA\nBA:  %v\nFBA: %v", seed, c, ba, fba)
			return false
		}
		if !patternsEqual(vba, oracle.Patterns) {
			t.Logf("seed %d %v: VBA != oracle\nVBA:    %v\noracle: %v",
				seed, c, vba, oracle.Patterns)
			return false
		}
		oracleSets := ObjectSets(oracle.Patterns)
		for name, ps := range map[string][]model.Pattern{
			"BA": ba, "FBA": fba, "VBA": vba,
		} {
			if !setsEqual(ObjectSets(ps), oracleSets) {
				t.Logf("seed %d %v: %s object sets differ from oracle\n%s: %v\noracle: %v",
					seed, c, name, name, ps, oracle.Patterns)
				return false
			}
			for _, p := range ps {
				checkWitness(t, name, hist, c, p)
			}
		}
		// FBA witnesses start exactly at oracle chain starts, one per chain.
		type startKey struct {
			key  string
			tick model.Tick
		}
		fbaStarts := map[startKey]int{}
		for _, p := range fba {
			fbaStarts[startKey{p.Key(), p.Times[0]}]++
		}
		oracleStarts := map[startKey]int{}
		for _, p := range oracle.Patterns {
			oracleStarts[startKey{p.Key(), p.Times[0]}]++
		}
		if !reflect.DeepEqual(fbaStarts, oracleStarts) {
			t.Logf("seed %d %v: FBA chain starts differ\nFBA:    %v\noracle: %v",
				seed, c, fba, oracle.Patterns)
			return false
		}
		return true
	}
	n := 120
	if testing.Short() {
		n = 25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Error(err)
	}
}

// TestStrictBASubset documents Algorithm 3's greedy incompleteness: its
// output object sets are always a subset of the exact baseline's, and all
// of its witnesses are valid.
func TestStrictBASubset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hist := genHistory(rng, 5+rng.Intn(3), 10+rng.Intn(15))
		c := genConstraints(rng)
		exact := ObjectSets(runMethod(hist, c, NewBA))
		strict := runMethod(hist, c, NewStrictBA)
		for _, p := range strict {
			checkWitness(t, "BA-strict", hist, c, p)
			if !exact[p.Key()] {
				t.Logf("seed %d: strict found %v unknown to exact", seed, p)
				return false
			}
		}
		return true
	}
	n := 80
	if testing.Short() {
		n = 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Error(err)
	}
}

// The greedy corner case: occurrences {1,2,4,6,7,8} with K=4, L=2, G=4.
// Greedy absorbs tick 4, then Lemma 5 discards the candidate at tick 6,
// although {1,2,6,7,8} is valid. Exact mode must find it.
func TestStrictBAGreedyCorner(t *testing.T) {
	occTicks := []model.Tick{1, 2, 4, 6, 7, 8}
	present := map[model.Tick]bool{}
	for _, t := range occTicks {
		present[t] = true
	}
	var ticks []model.Tick
	var clusters [][][]model.ObjectID
	for tk := model.Tick(1); tk <= 10; tk++ {
		ticks = append(ticks, tk)
		if present[tk] {
			clusters = append(clusters, [][]model.ObjectID{{1, 2}})
		} else {
			clusters = append(clusters, [][]model.ObjectID{})
		}
	}
	hist := historyOf(ticks, clusters)
	c := model.Constraints{M: 2, K: 4, L: 2, G: 4}

	exact := runMethod(hist, c, NewBA)
	if len(exact) == 0 {
		t.Fatal("exact BA missed the pattern")
	}
	strict := runMethod(hist, c, NewStrictBA)
	if len(strict) != 0 {
		t.Logf("note: strict BA found %v (greedy survived here)", strict)
	}
	fba := runMethod(hist, c, NewFBA)
	if !patternsEqual(exact, fba) {
		t.Errorf("exact BA %v != FBA %v", exact, fba)
	}
}

func TestVBAEmitsMaximalSequences(t *testing.T) {
	// One long co-movement: a single maximal sequence must be emitted once,
	// covering the full run (FBA would report a truncated prefix).
	var ticks []model.Tick
	var clusters [][][]model.ObjectID
	for tk := model.Tick(1); tk <= 40; tk++ {
		ticks = append(ticks, tk)
		if tk <= 30 {
			clusters = append(clusters, [][]model.ObjectID{{1, 2, 3}})
		} else {
			clusters = append(clusters, [][]model.ObjectID{})
		}
	}
	hist := historyOf(ticks, clusters)
	c := model.Constraints{M: 3, K: 4, L: 2, G: 2}
	vba := runMethod(hist, c, NewVBA)
	if len(vba) != 1 {
		t.Fatalf("VBA patterns = %v", vba)
	}
	if len(vba[0].Times) != 30 || vba[0].Times[0] != 1 || vba[0].Times[29] != 30 {
		t.Errorf("VBA witness = %v, want full run 1..30", vba[0].Times)
	}
}

func TestVBAFinalizesViaLemma7(t *testing.T) {
	// The pattern run ends at tick 10; G=2 means the string closes after
	// tick 13 (three zeros). The pattern must be emitted by Process (not
	// only at Flush) once tick 13 arrives — arrange a later unrelated
	// partition so the subtask keeps advancing.
	var ticks []model.Tick
	var clusters [][][]model.ObjectID
	for tk := model.Tick(1); tk <= 20; tk++ {
		ticks = append(ticks, tk)
		switch {
		case tk <= 10:
			clusters = append(clusters, [][]model.ObjectID{{1, 2}})
		case tk >= 14:
			clusters = append(clusters, [][]model.ObjectID{{1, 9}})
		default:
			clusters = append(clusters, [][]model.ObjectID{})
		}
	}
	hist := historyOf(ticks, clusters)
	c := model.Constraints{M: 2, K: 4, L: 2, G: 2}
	d := NewDriver(c, NewVBA)
	var got []model.Pattern
	emitted := -1
	for i, cs := range hist {
		d.Process(cs, func(p model.Pattern) {
			got = append(got, p)
			if p.Key() == "1,2" && emitted < 0 {
				emitted = i
			}
		})
	}
	if emitted < 0 {
		t.Fatal("pattern {1,2} not emitted during streaming")
	}
	if tick := hist[emitted].Tick; tick != 14 {
		t.Errorf("pattern emitted at tick %d, want 14 (first advance past the G+1 zeros)", tick)
	}
}

func TestDriverOverflowGuard(t *testing.T) {
	// A cluster of 30 objects overflows BA's exponential guard.
	big := make(model.Cluster, 30)
	for i := range big {
		big[i] = model.ObjectID(i + 1)
	}
	hist := []*model.ClusterSnapshot{{Tick: 1, Clusters: []model.Cluster{big}}}
	c := model.Constraints{M: 2, K: 1, L: 1, G: 1}
	d := NewDriver(c, NewBA)
	d.Run(hist)
	if !d.Overflowed() {
		t.Error("BA should report overflow on a 30-object partition")
	}
}

func TestEmptyHistory(t *testing.T) {
	c := paperConstraints()
	for name, mk := range map[string]NewFunc{
		"BA": NewBA, "FBA": NewFBA, "VBA": NewVBA,
	} {
		if got := runMethod(nil, c, mk); len(got) != 0 {
			t.Errorf("%s on empty history: %v", name, got)
		}
	}
	if got := Oracle(nil, c); len(got.Patterns) != 0 {
		t.Errorf("oracle on empty history: %v", got.Patterns)
	}
}

func TestGapBeyondGSplitsPatterns(t *testing.T) {
	// Two co-movement episodes separated by a gap > G: two maximal
	// sequences for the same object set.
	var ticks []model.Tick
	var clusters [][][]model.ObjectID
	occ := map[model.Tick]bool{}
	for tk := model.Tick(1); tk <= 6; tk++ {
		occ[tk] = true
	}
	for tk := model.Tick(20); tk <= 26; tk++ {
		occ[tk] = true
	}
	for tk := model.Tick(1); tk <= 30; tk++ {
		ticks = append(ticks, tk)
		if occ[tk] {
			clusters = append(clusters, [][]model.ObjectID{{1, 2}})
		} else {
			clusters = append(clusters, [][]model.ObjectID{})
		}
	}
	hist := historyOf(ticks, clusters)
	c := model.Constraints{M: 2, K: 4, L: 2, G: 2}
	vba := runMethod(hist, c, NewVBA)
	if len(vba) != 2 {
		t.Fatalf("VBA patterns = %v, want two episodes", vba)
	}
	if vba[0].Times[0] != 1 || vba[1].Times[0] != 20 {
		t.Errorf("episode starts = %d, %d", vba[0].Times[0], vba[1].Times[0])
	}
	fba := runMethod(hist, c, NewFBA)
	if len(fba) != 2 {
		t.Errorf("FBA patterns = %v, want two chain starts", fba)
	}
}
