package enum

import (
	"repro/internal/bitstr"
	"repro/internal/model"
	"repro/internal/timeseq"
)

// DefaultBAMaxPartition caps the partition size the Baseline will attempt
// to enumerate: beyond it the 2^n candidate materialization is hopeless
// (the paper observes BA "cannot run due to the storage cost" on large
// partitions — Figure 12 shows it failing beyond Or = 60%).
const DefaultBAMaxPartition = 22

// DefaultBACandidateBudget caps the number of candidate subsets one window
// may materialize (sum of C(n,k) for k >= M-1); beyond it the window
// overflows, modelling the paper's storage failure.
const DefaultBACandidateBudget = 1 << 20

// subsetCountAtLeast estimates sum_{k>=m} C(n,k), saturating at +inf-ish.
func subsetCountAtLeast(n, m int) float64 {
	if m < 0 {
		m = 0
	}
	total := 0.0
	c := 1.0 // C(n,0)
	for k := 0; k <= n; k++ {
		if k >= m {
			total += c
			if total > 1e15 {
				return total
			}
		}
		c = c * float64(n-k) / float64(k+1)
	}
	return total
}

// BA is the Baseline of Section 6.1 (Algorithm 3, the SPARE adaptation):
// every subset of each partition is materialized as a candidate and then
// verified against the next eta partitions.
//
// Two verification modes are provided:
//
//   - the default, used for cross-validation, decides each candidate with
//     the exact exists-a-valid-subsequence test, making BA's output
//     identical to FBA's (it remains exponential in time and storage —
//     that is the point of the baseline);
//   - Strict mode follows Algorithm 3's pseudocode verbatim: a single
//     greedily grown time sequence per candidate, discarded via Lemmas 5
//     and 6. The greedy sequence can absorb a tick that only ever forms a
//     too-short segment and then be discarded even though a valid sequence
//     skipping that tick exists, so Strict output is a subset of the exact
//     output; tests document this corner.
type BA struct {
	owner model.ObjectID
	c     model.Constraints
	w     windowed
	// Strict selects the verbatim Algorithm 3 greedy verification.
	Strict bool
	// MaxPartition guards against enumerating 2^n subsets of huge
	// partitions; windows beyond it set Overflowed and are skipped.
	MaxPartition int
	// Overflowed records that at least one window was skipped.
	Overflowed bool
}

// NewBA returns the Baseline enumerator for one owner subtask.
func NewBA(owner model.ObjectID, c model.Constraints) Enumerator {
	return &BA{
		owner:        owner,
		c:            c,
		w:            windowed{eta: c.Eta(), lookback: fbaLookback(c)},
		MaxPartition: DefaultBAMaxPartition,
	}
}

// NewStrictBA returns the Baseline in strict Algorithm 3 mode.
func NewStrictBA(owner model.ObjectID, c model.Constraints) Enumerator {
	ba := NewBA(owner, c).(*BA)
	ba.Strict = true
	return ba
}

// Name implements Enumerator.
func (b *BA) Name() string {
	if b.Strict {
		return "BA-strict"
	}
	return "BA"
}

// Process implements Enumerator.
func (b *BA) Process(p Partition, emit Emit) {
	for _, base := range b.w.advance(p) {
		b.evalWindow(base, emit)
	}
}

// Flush implements Enumerator.
func (b *BA) Flush(emit Emit) {
	for _, base := range b.w.drain() {
		b.evalWindow(base, emit)
	}
}

func (b *BA) evalWindow(base Partition, emit Emit) {
	n := len(base.Members)
	if n < b.c.M-1 {
		return
	}
	if n > b.MaxPartition ||
		subsetCountAtLeast(n, b.c.M-1) > DefaultBACandidateBudget {
		// The candidate list H of Algorithm 3 would not fit; this is the
		// failure mode the paper reports for B on large partitions.
		b.Overflowed = true
		return
	}
	// Enumerate every subset with |O| >= M-1 (Algorithm 3 lines 2-3) and
	// verify each against the window. Branches that can no longer reach
	// cardinality M-1 are skipped.
	subset := make([]model.ObjectID, 0, n)
	var walk func(from int)
	walk = func(from int) {
		if len(subset) >= b.c.M-1 {
			b.verify(base, subset, emit)
		}
		if len(subset)+(n-from) < b.c.M-1 {
			return
		}
		for i := from; i < n; i++ {
			subset = append(subset, base.Members[i])
			walk(i + 1)
			subset = subset[:len(subset)-1]
		}
	}
	walk(0)
}

// verify decides one candidate subset against the window's eta partitions
// (Algorithm 3 lines 4-12).
func (b *BA) verify(base Partition, members []model.ObjectID, emit Emit) {
	if b.Strict {
		b.verifyStrict(base, members, emit)
		return
	}
	// Exact mode: collect the occurrence bit string (with lookback) and
	// apply the same chain-start rule as FBA.
	lb := fbaLookback(b.c)
	total := lb + b.c.Eta()
	occ := bitstr.New(total)
	for j := 0; j < total; j++ {
		if b.w.hist.containsAll(base.Tick+model.Tick(j-lb), members) {
			occ.Set(j)
		}
	}
	chain, ok := chainAt(occ, lb, b.c)
	if !ok {
		return
	}
	pos := chain.Positions()
	ticks := make([]model.Tick, len(pos))
	for i, p := range pos {
		ticks[i] = base.Tick + model.Tick(p-lb)
	}
	emit(patternOf(b.owner, members, ticks))
}

// verifyStrict is Algorithm 3 verbatim: grow one sequence greedily, discard
// via Lemmas 5 and 6, output on first validity.
func (b *BA) verifyStrict(base Partition, members []model.ObjectID, emit Emit) {
	T := timeseq.Seq{base.Tick}
	for j := 1; j < b.c.Eta(); j++ {
		t := base.Tick + model.Tick(j)
		if !b.w.hist.containsAll(t, members) {
			continue
		}
		if timeseq.CanExtend(T, t, b.c) {
			T = append(T, t)
		} else if timeseq.ShouldDiscard(T, t, b.c) {
			return // Lemma 5 or 6
		}
		if len(T) >= b.c.K && timeseq.LastSegment(T).Len() >= b.c.L {
			emit(patternOf(b.owner, members, append([]model.Tick(nil), T...)))
			return
		}
	}
}
