package enum

import (
	"sort"

	"repro/internal/bitstr"
	"repro/internal/model"
)

// VBA is the Variable-length Bit Compression based Algorithm (Algorithm 5).
// Each trajectory assigned to the owner's subtask is tracked as one growing
// variable-length bit string (Definition 14). When G+1 trailing zeros close
// a string (Lemma 7) it either becomes a candidate (its prefix satisfies
// (K,L,G)) or is dropped. New candidates are combined with the global
// candidate list — pruned by the Lemma 8 span-overlap test — and every
// valid chain of the combined bit strings is reported as one maximal
// pattern time sequence (Definition 15).
//
// Each snapshot is thus verified exactly once, trading reporting latency
// for throughput, as the paper describes.
//
// Implementation notes beyond the pseudocode:
//
//   - The paper merges new candidates into C after the whole batch (line
//     21); that would miss patterns whose members finalize at the same
//     tick. Candidates are therefore merged one by one, each enumerated
//     against the candidates already in C.
//   - Finalized candidates whose episodes can no longer overlap any open or
//     future episode by at least K ticks are evicted from C; this is exact
//     under Lemma 8 and bounds memory on unbounded streams.
type VBA struct {
	owner model.ObjectID
	c     model.Constraints

	open     map[model.ObjectID]*vEntry
	cands    []vCand
	lastTick model.Tick
	started  bool
}

// vEntry is one open variable-length bit string.
type vEntry struct {
	start model.Tick
	bits  bitstr.Bits
}

// vCand is one finalized candidate: a maximal episode of co-clustering
// between the owner and id, spanning ticks [start, end].
type vCand struct {
	id    model.ObjectID
	start model.Tick
	end   model.Tick
	bits  *bitstr.Bits
}

// NewVBA returns the VBA enumerator for one owner subtask.
func NewVBA(owner model.ObjectID, c model.Constraints) Enumerator {
	return &VBA{
		owner: owner,
		c:     c,
		open:  make(map[model.ObjectID]*vEntry),
	}
}

// Name implements Enumerator.
func (v *VBA) Name() string { return "VBA" }

// Process implements Enumerator.
func (v *VBA) Process(p Partition, emit Emit) {
	t := p.Tick
	incoming := make(map[model.ObjectID]struct{}, len(p.Members))
	for _, id := range p.Members {
		incoming[id] = struct{}{}
	}

	// Advance every open string to tick t (zero-padding ticks at which the
	// owner's subtask received no partition), then classify per Lemma 7.
	var finalized []vCand
	var ids []model.ObjectID
	for id := range v.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := v.open[id]
		gap := int(t - v.lastTick - 1)
		if v.started && gap > 0 {
			e.bits.AppendN(false, gap)
		}
		_, present := incoming[id]
		e.bits.Append(present)
		if present {
			delete(incoming, id)
		}
		switch bitstr.Finalize(&e.bits, v.c.K, v.c.L, v.c.G, false) {
		case bitstr.StatusMaximal:
			finalized = append(finalized, v.seal(id, e))
			delete(v.open, id)
		case bitstr.StatusDead:
			delete(v.open, id)
		}
	}
	// Remaining incoming ids start fresh strings (Algorithm 5 lines 13-14).
	for id := range incoming {
		e := &vEntry{start: t}
		e.bits.Append(true)
		v.open[id] = e
	}
	v.lastTick = t
	v.started = true

	v.absorb(finalized, emit)
	v.evict()
}

// Flush implements Enumerator: every open string is force-closed and the
// valid ones are enumerated.
func (v *VBA) Flush(emit Emit) {
	var finalized []vCand
	var ids []model.ObjectID
	for id := range v.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := v.open[id]
		if bitstr.Finalize(&e.bits, v.c.K, v.c.L, v.c.G, true) == bitstr.StatusMaximal {
			finalized = append(finalized, v.seal(id, e))
		}
		delete(v.open, id)
	}
	v.absorb(finalized, emit)
	v.cands = nil
}

// seal trims the trailing zeros off a finalized entry and packages it.
func (v *VBA) seal(id model.ObjectID, e *vEntry) vCand {
	b := e.bits.Clone()
	b.Truncate(b.Len() - b.TrailingZeros())
	return vCand{
		id:    id,
		start: e.start,
		end:   e.start + model.Tick(b.Len()) - 1,
		bits:  b,
	}
}

// absorb enumerates each new candidate against the global list, then adds
// it, so same-tick finalizations still combine exactly once.
func (v *VBA) absorb(finalized []vCand, emit Emit) {
	for _, s := range finalized {
		v.enumerate(s, emit)
		v.cands = append(v.cands, s)
	}
}

// enumerate finds all patterns that include the new candidate s
// (Algorithm 5 lines 15-20).
func (v *VBA) enumerate(s vCand, emit Emit) {
	// Lemma 8 filter: candidates whose span cannot overlap s by K ticks
	// can never combine with it.
	var pool []vCand
	for _, c := range v.cands {
		lo, hi := maxTick(c.start, s.start), minTick(c.end, s.end)
		if !bitstr.SpanOverlapPrune(int64(lo), int64(hi), v.c.K) {
			pool = append(pool, c)
		}
	}
	// The pattern always includes s and the owner; X subsets of the pool
	// with |X| >= M-2 complete it. With M == 2 the empty X qualifies and
	// {owner, s} is reported from s's own chains.
	need := v.c.M - 2
	if need <= 0 {
		v.emitChains(s, nil, s.bits, s.start, emit)
	}
	if len(pool) < need || len(pool) == 0 {
		return
	}
	chosen := make([]vCand, 0, len(pool))
	v.extendVBA(s, pool, 0, chosen, s.bits, s.start, emit)
}

// extendVBA walks the candidate lattice depth-first with exact prefix
// pruning (an AND that satisfies no (K,L,G) chain admits no extension).
// prefix is the aligned AND of s and the chosen candidates; base is the
// tick of prefix position 0.
func (v *VBA) extendVBA(s vCand, pool []vCand, from int, chosen []vCand,
	prefix *bitstr.Bits, base model.Tick, emit Emit) {
	for i := from; i < len(pool); i++ {
		c := pool[i]
		nb, nbase := alignAnd(prefix, base, c.bits, c.start)
		if !bitstr.SatisfiesKLG(nb, v.c.K, v.c.L, v.c.G) {
			continue
		}
		chosen = append(chosen, c)
		if len(chosen) >= v.c.M-2 {
			v.emitChains(s, chosen, nb, nbase, emit)
		}
		v.extendVBA(s, pool, i+1, chosen, nb, nbase, emit)
		chosen = chosen[:len(chosen)-1]
	}
}

// emitChains reports every valid chain of the combined bit string as one
// maximal pattern time sequence.
func (v *VBA) emitChains(s vCand, chosen []vCand, bits *bitstr.Bits,
	base model.Tick, emit Emit) {
	ids := make([]model.ObjectID, 0, len(chosen)+1)
	ids = append(ids, s.id)
	for _, c := range chosen {
		ids = append(ids, c.id)
	}
	for _, chain := range bitstr.Chains(bits, v.c.L, v.c.G) {
		if chain.Count < v.c.K {
			continue
		}
		pos := chain.Positions()
		ticks := make([]model.Tick, len(pos))
		for i, p := range pos {
			ticks[i] = base + model.Tick(p)
		}
		emit(patternOf(v.owner, ids, ticks))
	}
}

// evict drops candidates that can no longer combine with any open or
// future episode: an episode starting at or after tick u overlaps candidate
// c in at most c.end-u+1 ticks, so once every open episode starts past
// c.end-K+1 (and any future episode starts later still), c is dead weight.
func (v *VBA) evict() {
	minOpen := v.lastTick + 1 // future episodes start at lastTick+1 or later
	for _, e := range v.open {
		if e.start < minOpen {
			minOpen = e.start
		}
	}
	keep := v.cands[:0]
	for _, c := range v.cands {
		if int64(c.end)-int64(minOpen)+1 >= int64(v.c.K) {
			keep = append(keep, c)
		}
	}
	v.cands = keep
}

// alignAnd intersects two variable-length bit strings whose position 0
// ticks are baseA and baseB; the result's base is the larger of the two and
// its length the overlap (possibly 0).
func alignAnd(a *bitstr.Bits, baseA model.Tick, b *bitstr.Bits, baseB model.Tick) (*bitstr.Bits, model.Tick) {
	lo := maxTick(baseA, baseB)
	hiA := baseA + model.Tick(a.Len()) - 1
	hiB := baseB + model.Tick(b.Len()) - 1
	hi := minTick(hiA, hiB)
	n := int(hi - lo + 1)
	if n < 0 {
		n = 0
	}
	out := bitstr.New(n)
	for i := 0; i < n; i++ {
		t := lo + model.Tick(i)
		if a.Get(int(t-baseA)) && b.Get(int(t-baseB)) {
			out.Set(i)
		}
	}
	return out, lo
}

func maxTick(a, b model.Tick) model.Tick {
	if a > b {
		return a
	}
	return b
}

func minTick(a, b model.Tick) model.Tick {
	if a < b {
		return a
	}
	return b
}
