package enum

import (
	"sort"

	"repro/internal/model"
)

// Driver fans cluster snapshots out to per-owner enumerator subtasks, the
// sequential equivalent of the id-based keyBy in the Flink pipeline. It is
// used by offline tests and single-node benchmarks; the flow pipeline
// performs the same routing across parallel subtasks.
type Driver struct {
	c    model.Constraints
	mk   NewFunc
	subs map[model.ObjectID]Enumerator
}

// NewDriver returns a driver creating one enumerator per owner via mk.
func NewDriver(c model.Constraints, mk NewFunc) *Driver {
	return &Driver{c: c, mk: mk, subs: make(map[model.ObjectID]Enumerator)}
}

// Process partitions one cluster snapshot (Lemma 3 applied) and routes each
// partition to its owner's enumerator.
func (d *Driver) Process(cs *model.ClusterSnapshot, emit Emit) {
	for _, p := range PartitionClusters(cs, d.c.M) {
		e := d.subs[p.Owner]
		if e == nil {
			e = d.mk(p.Owner, d.c)
			d.subs[p.Owner] = e
		}
		e.Process(p, emit)
	}
}

// Flush finalizes every subtask in deterministic owner order.
func (d *Driver) Flush(emit Emit) {
	owners := make([]model.ObjectID, 0, len(d.subs))
	for o := range d.subs {
		owners = append(owners, o)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	for _, o := range owners {
		d.subs[o].Flush(emit)
	}
}

// Overflowed reports whether any Baseline subtask skipped a window due to
// partition-size overflow (exponential blow-up guard).
func (d *Driver) Overflowed() bool {
	for _, e := range d.subs {
		if ba, ok := e.(*BA); ok && ba.Overflowed {
			return true
		}
	}
	return false
}

// Run processes a whole cluster history and returns the sorted pattern
// list. Convenience for tests and benches.
func (d *Driver) Run(history []*model.ClusterSnapshot) []model.Pattern {
	var out []model.Pattern
	emit := func(p model.Pattern) { out = append(out, p) }
	for _, cs := range history {
		d.Process(cs, emit)
	}
	d.Flush(emit)
	SortPatterns(out)
	return out
}
