package enum

import (
	"sort"

	"repro/internal/model"
	"repro/internal/timeseq"
)

// Oracle computes, offline and by brute force, every co-movement pattern in
// a cluster history: all object sets O with |O| >= M together with each of
// their maximal pattern time sequences (Definition 15). It is the ground
// truth the streaming enumerators are validated against. Cluster sizes are
// expected to be small (test workloads); the subset enumeration is capped.
type OracleResult struct {
	// Patterns holds one entry per (object set, maximal sequence) pair.
	Patterns []model.Pattern
}

// OracleMaxCluster bounds the cluster size the oracle will expand.
const OracleMaxCluster = 16

// Oracle enumerates patterns from a full cluster history.
func Oracle(history []*model.ClusterSnapshot, c model.Constraints) OracleResult {
	// occurrences: object-set key -> sorted tick list (built incrementally).
	type entry struct {
		objs  []model.ObjectID
		ticks []model.Tick
	}
	occ := make(map[string]*entry)

	for _, cs := range history {
		for _, cl := range cs.Clusters {
			if len(cl) < c.M {
				continue
			}
			n := len(cl)
			if n > OracleMaxCluster {
				panic("enum: oracle cluster too large; shrink the test workload")
			}
			// Enumerate subsets of size >= M.
			subset := make([]model.ObjectID, 0, n)
			var walk func(from int)
			walk = func(from int) {
				if len(subset) >= c.M {
					p := model.Pattern{Objects: append([]model.ObjectID(nil), subset...)}
					k := p.Key()
					e := occ[k]
					if e == nil {
						e = &entry{objs: p.Objects}
						occ[k] = e
					}
					e.ticks = append(e.ticks, cs.Tick)
				}
				for i := from; i < n; i++ {
					subset = append(subset, cl[i])
					walk(i + 1)
					subset = subset[:len(subset)-1]
				}
			}
			walk(0)
		}
	}

	var out OracleResult
	for _, e := range occ {
		s := timeseq.Dedup(e.ticks)
		for _, chain := range maximalChains(s, c) {
			out.Patterns = append(out.Patterns, model.Pattern{
				Objects: e.objs,
				Times:   chain,
			})
		}
	}
	SortPatterns(out.Patterns)
	return out
}

// maximalChains decomposes a sorted tick sequence into its maximal valid
// chains under (K, L, G): runs shorter than L are unusable, usable runs
// chain while inter-run gaps stay within G, and a chain qualifies when its
// total tick count reaches K. Each qualifying chain is one maximal pattern
// time sequence.
func maximalChains(s timeseq.Seq, c model.Constraints) []timeseq.Seq {
	var out []timeseq.Seq
	var chain timeseq.Seq
	var lastEnd model.Tick
	flush := func() {
		if len(chain) >= c.K {
			out = append(out, append(timeseq.Seq(nil), chain...))
		}
		chain = chain[:0]
	}
	for _, run := range timeseq.Segments(s) {
		if run.Len() < c.L {
			continue
		}
		if len(chain) > 0 && int(run.Start-lastEnd) > c.G {
			flush()
		}
		for t := run.Start; t <= run.End; t++ {
			chain = append(chain, t)
		}
		lastEnd = run.End
	}
	flush()
	return out
}

// SortPatterns orders patterns canonically: by object-set key, then by
// first witness tick.
func SortPatterns(ps []model.Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		ki, kj := ps[i].Key(), ps[j].Key()
		if ki != kj {
			return ki < kj
		}
		if len(ps[i].Times) == 0 || len(ps[j].Times) == 0 {
			return len(ps[i].Times) < len(ps[j].Times)
		}
		return ps[i].Times[0] < ps[j].Times[0]
	})
}

// ObjectSets returns the distinct object-set keys of a pattern list.
func ObjectSets(ps []model.Pattern) map[string]bool {
	out := make(map[string]bool, len(ps))
	for _, p := range ps {
		out[p.Key()] = true
	}
	return out
}
