package enum

import (
	"math/rand"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/model"
)

// feedRange runs parts[from:to] through e, collecting emissions.
func feedRange(e Enumerator, parts []Partition, from, to int, out *[]model.Pattern) {
	for _, p := range parts[from:to] {
		e.Process(p, func(pat model.Pattern) { *out = append(*out, pat) })
	}
}

// Snapshotting an enumerator between two partitions and restoring the blob
// into a freshly constructed instance must be invisible: the concatenated
// emissions (pre-cut from the original, post-cut + flush from the restored
// copy) equal an uninterrupted run's, at every cut point. This is exactly
// the property crash recovery relies on — the checkpoint cut falls between
// two ticks of the partition stream.
func TestSnapshotRestoreMidStream(t *testing.T) {
	methods := map[string]NewFunc{"BA": NewBA, "FBA": NewFBA, "VBA": NewVBA}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		hist := genHistory(rng, 7, 24)
		c := genConstraints(rng)
		perOwner := make(map[model.ObjectID][]Partition)
		for _, cs := range hist {
			for _, p := range PartitionClusters(cs, c.M) {
				perOwner[p.Owner] = append(perOwner[p.Owner], p)
			}
		}
		for name, mk := range methods {
			for owner, parts := range perOwner {
				var full []model.Pattern
				ref := mk(owner, c)
				feedRange(ref, parts, 0, len(parts), &full)
				ref.Flush(func(p model.Pattern) { full = append(full, p) })
				SortPatterns(full)

				for _, cut := range []int{0, len(parts) / 3, len(parts) / 2, len(parts)} {
					var got []model.Pattern
					first := mk(owner, c)
					feedRange(first, parts, 0, cut, &got)
					blob, err := first.(ckpt.Snapshotter).SnapshotState()
					if err != nil {
						t.Fatalf("%s seed %d: snapshot at %d: %v", name, seed, cut, err)
					}
					second := mk(owner, c)
					if len(blob) > 0 {
						if err := second.(ckpt.Snapshotter).RestoreState(blob); err != nil {
							t.Fatalf("%s seed %d: restore at %d: %v", name, seed, cut, err)
						}
					}
					feedRange(second, parts, cut, len(parts), &got)
					second.Flush(func(p model.Pattern) { got = append(got, p) })
					SortPatterns(got)
					if !patternsEqual(got, full) {
						t.Fatalf("%s seed %d owner %d cut %d: %d patterns, want %d\n got %v\nwant %v",
							name, seed, owner, cut, len(got), len(full), got, full)
					}
				}
			}
		}
	}
}

// A blob restored into the wrong enumerator type must fail loudly.
func TestRestoreRejectsWrongMethod(t *testing.T) {
	c := paperConstraints()
	f := NewFBA(1, c).(*FBA)
	f.Process(Partition{Tick: 1, Owner: 1, Members: []model.ObjectID{2, 3, 4}}, func(model.Pattern) {})
	blob, err := f.SnapshotState()
	if err != nil || len(blob) == 0 {
		t.Fatalf("snapshot = %v, %v", blob, err)
	}
	v := NewVBA(1, c).(*VBA)
	if err := v.RestoreState(blob); err == nil {
		t.Fatal("VBA accepted an FBA blob")
	}
	b := NewBA(1, c).(*BA)
	if err := b.RestoreState(blob); err == nil {
		t.Fatal("BA accepted an FBA blob")
	}
}

// Truncated blobs must produce errors, not panics or silent corruption.
func TestRestoreRejectsTruncatedBlob(t *testing.T) {
	c := paperConstraints()
	v := NewVBA(1, c).(*VBA)
	for _, p := range []Partition{
		{Tick: 1, Owner: 1, Members: []model.ObjectID{2, 3}},
		{Tick: 2, Owner: 1, Members: []model.ObjectID{2, 3}},
	} {
		v.Process(p, func(model.Pattern) {})
	}
	blob, err := v.SnapshotState()
	if err != nil || len(blob) < 4 {
		t.Fatalf("snapshot = %d bytes, %v", len(blob), err)
	}
	for cut := 2; cut < len(blob); cut++ {
		fresh := NewVBA(1, c).(*VBA)
		if err := fresh.RestoreState(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
