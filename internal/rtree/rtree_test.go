package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("Len=%d Height=%d", tr.Len(), tr.Height())
	}
	found := 0
	tr.Search(geo.Rect{MinX: -100, MinY: -100, MaxX: 100, MaxY: 100}, func(Item) bool {
		found++
		return true
	})
	if found != 0 {
		t.Error("empty tree returned items")
	}
	if tr.Delete(geo.Point{}, 1) {
		t.Error("delete from empty tree should fail")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNewWithFanoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("fanout < 4 should panic")
		}
	}()
	NewWithFanout(3)
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := New()
	pts := []geo.Point{
		{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}, {X: 10, Y: 10},
	}
	for i, p := range pts {
		tr.Insert(p, int64(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got []int64
	tr.Search(geo.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}, func(it Item) bool {
		got = append(got, it.ID)
		return true
	})
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("Search = %v", got)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(geo.Point{X: float64(i % 10), Y: float64(i / 10)}, int64(i))
	}
	visits := 0
	completed := tr.Search(tr.Bounds(), func(Item) bool {
		visits++
		return visits < 5
	})
	if completed {
		t.Error("Search should report early stop")
	}
	if visits != 5 {
		t.Errorf("visits = %d, want 5", visits)
	}
}

func TestSearchWithinMetric(t *testing.T) {
	tr := New()
	tr.Insert(geo.Point{X: 1, Y: 1}, 1) // L1 dist 2 from origin
	tr.Insert(geo.Point{X: 0.5, Y: 0}, 2)
	var ids []int64
	tr.SearchWithin(geo.Point{}, 1.5, geo.L1, func(it Item) bool {
		ids = append(ids, it.ID)
		return true
	})
	if len(ids) != 1 || ids[0] != 2 {
		t.Errorf("L1 within 1.5 = %v, want [2]", ids)
	}
	ids = nil
	tr.SearchWithin(geo.Point{}, 1.5, geo.LInf, func(it Item) bool {
		ids = append(ids, it.ID)
		return true
	})
	if len(ids) != 2 {
		t.Errorf("LInf within 1.5 = %v, want both", ids)
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := New()
	p := geo.Point{X: 5, Y: 5}
	for i := 0; i < 50; i++ {
		tr.Insert(p, int64(i))
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d", tr.Len())
	}
	count := 0
	tr.Search(geo.RectOf(p), func(Item) bool { count++; return true })
	if count != 50 {
		t.Errorf("found %d duplicates, want 50", count)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if !tr.Delete(p, 25) {
		t.Error("delete duplicate failed")
	}
	if tr.Len() != 49 {
		t.Errorf("Len after delete = %d", tr.Len())
	}
}

// linearScan is the brute-force oracle.
type linearScan struct {
	items []Item
}

func (l *linearScan) insert(p geo.Point, id int64) {
	l.items = append(l.items, Item{P: p, ID: id})
}

func (l *linearScan) remove(p geo.Point, id int64) {
	for i, it := range l.items {
		if it.ID == id && it.P == p {
			l.items = append(l.items[:i], l.items[i+1:]...)
			return
		}
	}
}

func (l *linearScan) search(r geo.Rect) []int64 {
	var out []int64
	for _, it := range l.items {
		if r.Contains(it.P) {
			out = append(out, it.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collectSearch(tr *Tree, r geo.Rect) []int64 {
	var out []int64
	tr.Search(r, func(it Item) bool {
		out = append(out, it.ID)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSearchMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewWithFanout(4 + rng.Intn(28))
		oracle := &linearScan{}
		n := 50 + rng.Intn(300)
		for i := 0; i < n; i++ {
			p := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			tr.Insert(p, int64(i))
			oracle.insert(p, int64(i))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		for q := 0; q < 20; q++ {
			cx, cy := rng.Float64()*100, rng.Float64()*100
			w := rng.Float64() * 30
			r := geo.Rect{MinX: cx - w, MinY: cy - w, MaxX: cx + w, MaxY: cy + w}
			if !sameIDs(collectSearch(tr, r), oracle.search(r)) {
				t.Logf("mismatch on rect %v", r)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedInsertSearch(t *testing.T) {
	// The GridQuery pattern (Lemma 2): query each point against the tree
	// built so far, then insert it. The union of results must equal all
	// close pairs exactly once.
	rng := rand.New(rand.NewSource(42))
	const n = 400
	const eps = 3.0
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	tr := New()
	type pair struct{ a, b int64 }
	found := map[pair]int{}
	for i, p := range pts {
		tr.SearchWithin(p, eps, geo.L1, func(it Item) bool {
			a, b := int64(i), it.ID
			if a > b {
				a, b = b, a
			}
			found[pair{a, b}]++
			return true
		})
		tr.Insert(p, int64(i))
	}
	// Oracle: all pairs within eps.
	want := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pts[i].Within(pts[j], eps, geo.L1) {
				want++
				if found[pair{int64(i), int64(j)}] != 1 {
					t.Errorf("pair (%d,%d) found %d times, want 1",
						i, j, found[pair{int64(i), int64(j)}])
				}
			}
		}
	}
	if len(found) != want {
		t.Errorf("found %d pairs, want %d", len(found), want)
	}
}

func TestDeleteRandomized(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewWithFanout(4 + rng.Intn(12))
		oracle := &linearScan{}
		var live []Item
		for op := 0; op < 400; op++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				p := geo.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
				id := int64(op)
				tr.Insert(p, id)
				oracle.insert(p, id)
				live = append(live, Item{P: p, ID: id})
			} else {
				k := rng.Intn(len(live))
				it := live[k]
				live = append(live[:k], live[k+1:]...)
				if !tr.Delete(it.P, it.ID) {
					t.Logf("delete %v failed", it)
					return false
				}
				oracle.remove(it.P, it.ID)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		if tr.Len() != len(oracle.items) {
			t.Logf("size %d vs oracle %d", tr.Len(), len(oracle.items))
			return false
		}
		r := geo.Rect{MinX: 0, MinY: 0, MaxX: 50, MaxY: 50}
		return sameIDs(collectSearch(tr, r), oracle.search(r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(9))
	var items []Item
	for i := 0; i < 300; i++ {
		p := geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		tr.Insert(p, int64(i))
		items = append(items, Item{P: p, ID: int64(i)})
	}
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	for _, it := range items {
		if !tr.Delete(it.P, it.ID) {
			t.Fatalf("delete %v failed", it)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Tree remains usable.
	tr.Insert(geo.Point{X: 1, Y: 1}, 999)
	if got := collectSearch(tr, tr.Bounds()); len(got) != 1 || got[0] != 999 {
		t.Errorf("reuse after drain: %v", got)
	}
}

func TestHeightGrowth(t *testing.T) {
	tr := NewWithFanout(4)
	for i := 0; i < 1000; i++ {
		tr.Insert(geo.Point{X: float64(i % 37), Y: float64(i % 101)}, int64(i))
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d, expected deep tree with fanout 4", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if got := collectSearch(tr, tr.Bounds()); len(got) != 1000 {
		t.Errorf("full search returned %d items", len(got))
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, b.N)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(pts[i], int64(i))
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	for i := 0; i < 100000; i++ {
		tr.Insert(geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		tr.SearchWithin(q, 5, geo.L1, func(Item) bool { return true })
	}
}
