// Package rtree implements an in-memory R*-tree over points, the local
// index of the paper's two-layer GR-index (Section 5.1, citing Beckmann et
// al.'s R*-tree). Each grid cell owns one tree; data objects are inserted
// incrementally while range queries run against the partially built tree
// (Lemma 2), so the tree supports interleaved insert/search efficiently.
//
// The implementation follows the R*-tree design: subtree choice by overlap
// enlargement at the leaf level, margin-driven axis selection for splits,
// and forced reinsertion on first overflow per level.
package rtree

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// Item is a stored point with an opaque identifier.
type Item struct {
	P  geo.Point
	ID int64
}

const (
	defaultMaxEntries = 32
	// reinsertFraction is the share of entries removed on forced reinsert.
	reinsertFraction = 0.3
)

// Tree is an R*-tree over points. The zero value is not usable; call New.
type Tree struct {
	root       *node
	maxEntries int
	minEntries int
	size       int
	height     int // leaf level = 0; root is at height-1
}

type node struct {
	rect   geo.Rect
	leaf   bool
	items  []Item  // leaf payload
	kids   []*node // interior children
	parent *node
}

// New returns an empty tree with the default fanout.
func New() *Tree { return NewWithFanout(defaultMaxEntries) }

// NewWithFanout returns an empty tree whose nodes hold at most max entries.
// max must be at least 4.
func NewWithFanout(max int) *Tree {
	if max < 4 {
		panic("rtree: fanout must be >= 4")
	}
	t := &Tree{maxEntries: max, minEntries: max * 2 / 5}
	if t.minEntries < 2 {
		t.minEntries = 2
	}
	t.root = &node{leaf: true, rect: geo.EmptyRect()}
	t.height = 1
	return t
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a leaf-only tree).
func (t *Tree) Height() int { return t.height }

// Bounds returns the minimal rectangle covering all items.
func (t *Tree) Bounds() geo.Rect { return t.root.rect }

// Insert adds one item.
func (t *Tree) Insert(p geo.Point, id int64) {
	t.size++
	// reinserted tracks which levels already performed a forced reinsert
	// during this insertion (the R*-tree does it once per level).
	reinserted := make(map[int]bool)
	t.insertItem(Item{P: p, ID: id}, reinserted)
}

func (t *Tree) insertItem(it Item, reinserted map[int]bool) {
	leaf := t.chooseLeaf(t.root, geo.RectOf(it.P))
	leaf.items = append(leaf.items, it)
	leaf.rect = leaf.rect.UnionPoint(it.P)
	t.adjustUpward(leaf.parent, geo.RectOf(it.P))
	if len(leaf.items) > t.maxEntries {
		t.overflow(leaf, 0, reinserted)
	}
}

// chooseLeaf descends from n to the leaf best suited for r.
func (t *Tree) chooseLeaf(n *node, r geo.Rect) *node {
	for !n.leaf {
		n = t.chooseChild(n, r)
	}
	return n
}

// chooseChild picks the child of n to descend into for rectangle r,
// following the R*-tree criteria.
func (t *Tree) chooseChild(n *node, r geo.Rect) *node {
	kids := n.kids
	if kids[0].leaf {
		// Children are leaves: minimize overlap enlargement, ties by area
		// enlargement, then by area.
		best := kids[0]
		bestOverlap := overlapEnlargement(kids, 0, r)
		bestEnl := kids[0].rect.Enlargement(r)
		bestArea := kids[0].rect.Area()
		for i := 1; i < len(kids); i++ {
			ov := overlapEnlargement(kids, i, r)
			enl := kids[i].rect.Enlargement(r)
			area := kids[i].rect.Area()
			if ov < bestOverlap ||
				(ov == bestOverlap && (enl < bestEnl ||
					(enl == bestEnl && area < bestArea))) {
				best, bestOverlap, bestEnl, bestArea = kids[i], ov, enl, area
			}
		}
		return best
	}
	// Interior children: minimize area enlargement, ties by area.
	best := kids[0]
	bestEnl := kids[0].rect.Enlargement(r)
	bestArea := kids[0].rect.Area()
	for i := 1; i < len(kids); i++ {
		enl := kids[i].rect.Enlargement(r)
		area := kids[i].rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = kids[i], enl, area
		}
	}
	return best
}

// overlapEnlargement is the increase of kids[i]'s overlap with its siblings
// if it absorbed r.
func overlapEnlargement(kids []*node, i int, r geo.Rect) float64 {
	grown := kids[i].rect.Union(r)
	var before, after float64
	for j, k := range kids {
		if j == i {
			continue
		}
		before += kids[i].rect.IntersectionArea(k.rect)
		after += grown.IntersectionArea(k.rect)
	}
	return after - before
}

// adjustUpward grows ancestor rectangles to absorb r.
func (t *Tree) adjustUpward(n *node, r geo.Rect) {
	for n != nil {
		n.rect = n.rect.Union(r)
		n = n.parent
	}
}

// overflow handles a node that exceeds maxEntries: forced reinsert on the
// first overflow at this level (unless root), split otherwise.
func (t *Tree) overflow(n *node, level int, reinserted map[int]bool) {
	if n != t.root && !reinserted[level] {
		reinserted[level] = true
		t.reinsert(n, level, reinserted)
		return
	}
	t.split(n, level, reinserted)
}

// reinsert removes the entries farthest from n's center and re-adds them.
func (t *Tree) reinsert(n *node, level int, reinserted map[int]bool) {
	center := n.rect.Center()
	count := int(float64(t.maxEntries) * reinsertFraction)
	if count < 1 {
		count = 1
	}
	if n.leaf {
		sort.Slice(n.items, func(i, j int) bool {
			return n.items[i].P.Dist(center, geo.L2) < n.items[j].P.Dist(center, geo.L2)
		})
		cut := len(n.items) - count
		removed := append([]Item(nil), n.items[cut:]...)
		n.items = n.items[:cut]
		t.recomputeRect(n)
		t.tightenUpward(n.parent)
		for _, it := range removed {
			t.insertItem(it, reinserted)
		}
		return
	}
	sort.Slice(n.kids, func(i, j int) bool {
		return n.kids[i].rect.Center().Dist(center, geo.L2) <
			n.kids[j].rect.Center().Dist(center, geo.L2)
	})
	cut := len(n.kids) - count
	removed := append([]*node(nil), n.kids[cut:]...)
	n.kids = n.kids[:cut]
	t.recomputeRect(n)
	t.tightenUpward(n.parent)
	for _, k := range removed {
		// n sits at the given level; its children live one level below.
		t.insertSubtree(k, level-1, reinserted)
	}
}

// insertSubtree re-attaches an orphaned subtree whose leaves sit at the
// given level (0 = leaf nodes themselves).
func (t *Tree) insertSubtree(sub *node, level int, reinserted map[int]bool) {
	// Descend to the node whose children live at sub's level.
	depth := t.height - 1 // root's level index
	n := t.root
	for depth > level+1 {
		n = t.chooseChild(n, sub.rect)
		depth--
	}
	sub.parent = n
	n.kids = append(n.kids, sub)
	t.adjustUpward(n, sub.rect)
	if len(n.kids) > t.maxEntries {
		t.overflow(n, level+1, reinserted)
	}
}

// split divides an overflowing node using the R* axis/distribution choice.
func (t *Tree) split(n *node, level int, reinserted map[int]bool) {
	var sibling *node
	if n.leaf {
		left, right := splitItems(n.items, t.minEntries)
		n.items = left
		sibling = &node{leaf: true, items: right}
	} else {
		left, right := splitKids(n.kids, t.minEntries)
		n.kids = left
		sibling = &node{kids: right}
		for _, k := range sibling.kids {
			k.parent = sibling
		}
	}
	t.recomputeRect(n)
	t.recomputeRect(sibling)

	if n == t.root {
		newRoot := &node{kids: []*node{n, sibling}}
		n.parent, sibling.parent = newRoot, newRoot
		t.recomputeRect(newRoot)
		t.root = newRoot
		t.height++
		return
	}
	p := n.parent
	sibling.parent = p
	p.kids = append(p.kids, sibling)
	t.tightenUpward(p)
	if len(p.kids) > t.maxEntries {
		t.overflow(p, level+1, reinserted)
	}
}

// rectsOf abstracts item/child rectangles for the split algorithm.
type rected interface{ rectOf(i int) geo.Rect }

type itemRects []Item

func (s itemRects) rectOf(i int) geo.Rect { return geo.RectOf(s[i].P) }

type kidRects []*node

func (s kidRects) rectOf(i int) geo.Rect { return s[i].rect }

// chooseSplitIndex implements the R* split: pick the axis minimizing the
// total margin over all distributions, then the distribution minimizing
// overlap (ties: minimal total area). It returns (axis, cut) where cut is
// the size of the left group after sorting by that axis.
func chooseSplitIndex(n int, rs rected, sortBy func(axis int), minEntries int) (int, int) {
	bestAxis, bestCut := 0, minEntries
	bestMargin := -1.0
	for axis := 0; axis < 2; axis++ {
		sortBy(axis)
		margin := 0.0
		type dist struct {
			overlap, area float64
			cut           int
		}
		best := dist{overlap: -1}
		// Prefix/suffix rect accumulation.
		prefix := make([]geo.Rect, n+1)
		suffix := make([]geo.Rect, n+1)
		prefix[0] = geo.EmptyRect()
		suffix[n] = geo.EmptyRect()
		for i := 0; i < n; i++ {
			prefix[i+1] = prefix[i].Union(rs.rectOf(i))
		}
		for i := n - 1; i >= 0; i-- {
			suffix[i] = suffix[i+1].Union(rs.rectOf(i))
		}
		for cut := minEntries; cut <= n-minEntries; cut++ {
			l, r := prefix[cut], suffix[cut]
			margin += l.Margin() + r.Margin()
			ov := l.IntersectionArea(r)
			area := l.Area() + r.Area()
			if best.overlap < 0 || ov < best.overlap ||
				(ov == best.overlap && area < best.area) {
				best = dist{overlap: ov, area: area, cut: cut}
			}
		}
		if bestMargin < 0 || margin < bestMargin {
			bestMargin = margin
			bestAxis = axis
			bestCut = best.cut
		}
	}
	return bestAxis, bestCut
}

func splitItems(items []Item, minEntries int) ([]Item, []Item) {
	n := len(items)
	sortBy := func(axis int) {
		sort.Slice(items, func(i, j int) bool {
			if axis == 0 {
				return items[i].P.X < items[j].P.X
			}
			return items[i].P.Y < items[j].P.Y
		})
	}
	axis, cut := chooseSplitIndex(n, itemRects(items), sortBy, minEntries)
	sortBy(axis)
	left := append([]Item(nil), items[:cut]...)
	right := append([]Item(nil), items[cut:]...)
	return left, right
}

func splitKids(kids []*node, minEntries int) ([]*node, []*node) {
	n := len(kids)
	sortBy := func(axis int) {
		sort.Slice(kids, func(i, j int) bool {
			if axis == 0 {
				if kids[i].rect.MinX != kids[j].rect.MinX {
					return kids[i].rect.MinX < kids[j].rect.MinX
				}
				return kids[i].rect.MaxX < kids[j].rect.MaxX
			}
			if kids[i].rect.MinY != kids[j].rect.MinY {
				return kids[i].rect.MinY < kids[j].rect.MinY
			}
			return kids[i].rect.MaxY < kids[j].rect.MaxY
		})
	}
	axis, cut := chooseSplitIndex(n, kidRects(kids), sortBy, minEntries)
	sortBy(axis)
	left := append([]*node(nil), kids[:cut]...)
	right := append([]*node(nil), kids[cut:]...)
	return left, right
}

// recomputeRect rebuilds n's bounding rectangle from its contents.
func (t *Tree) recomputeRect(n *node) {
	r := geo.EmptyRect()
	if n.leaf {
		for _, it := range n.items {
			r = r.UnionPoint(it.P)
		}
	} else {
		for _, k := range n.kids {
			r = r.Union(k.rect)
		}
	}
	n.rect = r
}

// tightenUpward recomputes rectangles from n to the root.
func (t *Tree) tightenUpward(n *node) {
	for n != nil {
		t.recomputeRect(n)
		n = n.parent
	}
}

// Search visits every item inside r. The visit function returns false to
// stop early. Search returns false when the visit was stopped.
func (t *Tree) Search(r geo.Rect, visit func(Item) bool) bool {
	return t.searchNode(t.root, r, visit)
}

func (t *Tree) searchNode(n *node, r geo.Rect, visit func(Item) bool) bool {
	if !n.rect.Intersects(r) {
		return true
	}
	if n.leaf {
		for _, it := range n.items {
			if r.Contains(it.P) {
				if !visit(it) {
					return false
				}
			}
		}
		return true
	}
	for _, k := range n.kids {
		if !t.searchNode(k, r, visit) {
			return false
		}
	}
	return true
}

// SearchWithin visits every item whose distance to q under metric m is at
// most eps, filtering through the bounding square first.
func (t *Tree) SearchWithin(q geo.Point, eps float64, m geo.Metric, visit func(Item) bool) bool {
	return t.Search(geo.RectAround(q, eps), func(it Item) bool {
		if q.Within(it.P, eps, m) {
			return visit(it)
		}
		return true
	})
}

// Delete removes one item equal to (p, id) and reports whether it was found.
func (t *Tree) Delete(p geo.Point, id int64) bool {
	leaf := t.findLeaf(t.root, p, id)
	if leaf == nil {
		return false
	}
	for i, it := range leaf.items {
		if it.ID == id && it.P == p {
			leaf.items = append(leaf.items[:i], leaf.items[i+1:]...)
			break
		}
	}
	t.size--
	t.condense(leaf)
	return true
}

func (t *Tree) findLeaf(n *node, p geo.Point, id int64) *node {
	if !n.rect.Contains(p) {
		return nil
	}
	if n.leaf {
		for _, it := range n.items {
			if it.ID == id && it.P == p {
				return n
			}
		}
		return nil
	}
	for _, k := range n.kids {
		if found := t.findLeaf(k, p, id); found != nil {
			return found
		}
	}
	return nil
}

// condense removes underflowing nodes on the path to the root and reinserts
// their orphaned entries, then shrinks the root if necessary.
func (t *Tree) condense(n *node) {
	var orphanItems []Item
	var orphanSubtrees []struct {
		n     *node
		level int
	}
	level := 0
	for n != t.root {
		p := n.parent
		under := false
		if n.leaf {
			under = len(n.items) < t.minEntries
		} else {
			under = len(n.kids) < t.minEntries
		}
		if under {
			// Detach n from its parent and queue its contents.
			for i, k := range p.kids {
				if k == n {
					p.kids = append(p.kids[:i], p.kids[i+1:]...)
					break
				}
			}
			if n.leaf {
				orphanItems = append(orphanItems, n.items...)
			} else {
				for _, k := range n.kids {
					orphanSubtrees = append(orphanSubtrees, struct {
						n     *node
						level int
					}{k, level - 1})
				}
			}
		} else {
			t.recomputeRect(n)
		}
		n = p
		level++
	}
	t.recomputeRect(t.root)

	// Shrink the root while it has a single interior child.
	for !t.root.leaf && len(t.root.kids) == 1 {
		t.root = t.root.kids[0]
		t.root.parent = nil
		t.height--
	}
	if !t.root.leaf && len(t.root.kids) == 0 {
		t.root = &node{leaf: true, rect: geo.EmptyRect()}
		t.height = 1
	}

	reinserted := make(map[int]bool)
	for _, it := range orphanItems {
		t.insertItem(it, reinserted)
	}
	for _, s := range orphanSubtrees {
		if s.level >= t.height-1 {
			// The tree shrank below the subtree's level; reinsert its items.
			collectItems(s.n, func(it Item) { t.insertItem(it, reinserted) })
			continue
		}
		t.insertSubtree(s.n, s.level, reinserted)
	}
}

func collectItems(n *node, f func(Item)) {
	if n.leaf {
		for _, it := range n.items {
			f(it)
		}
		return
	}
	for _, k := range n.kids {
		collectItems(k, f)
	}
}

// CheckInvariants verifies structural invariants; tests call it after
// randomized workloads. It returns the first violation found.
func (t *Tree) CheckInvariants() error {
	count := 0
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if n.leaf {
			if depth != t.height-1 {
				return fmt.Errorf("leaf at depth %d, height %d", depth, t.height)
			}
			for _, it := range n.items {
				count++
				if !n.rect.Contains(it.P) {
					return fmt.Errorf("item %v outside leaf rect %v", it, n.rect)
				}
			}
			return nil
		}
		if len(n.kids) == 0 {
			return fmt.Errorf("interior node with no children")
		}
		for _, k := range n.kids {
			if k.parent != n {
				return fmt.Errorf("broken parent pointer")
			}
			if !n.rect.ContainsRect(k.rect) {
				return fmt.Errorf("child rect %v outside parent %v", k.rect, n.rect)
			}
			if err := walk(k, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size mismatch: counted %d, recorded %d", count, t.size)
	}
	return nil
}
