package join

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/model"
)

// CellDelta is the object delta of one grid cell between consecutive
// ticks: objects leaving the cell (by id) and objects entering it (with
// location), separated into the cell's data and query roles. An object
// that moved but stayed in the cell appears in both the del and add
// lists, under its old and new location respectively.
type CellDelta struct {
	Key      grid.Key
	DataDel  []model.ObjectID
	QueryDel []model.ObjectID
	DataAdd  []IDLoc
	QueryAdd []IDLoc
}

// Empty reports whether the delta carries no change.
func (d *CellDelta) Empty() bool {
	return len(d.DataDel) == 0 && len(d.QueryDel) == 0 &&
		len(d.DataAdd) == 0 && len(d.QueryAdd) == 0
}

// DiffSnapshot computes the per-cell deltas that advance the grid
// allocation from prev (object id -> location at the previous tick) to
// the given snapshot, and updates prev in place to the snapshot's
// positions. An object with an unchanged location contributes nothing;
// moved objects re-run Algorithm 1 for both locations (dels from the old
// allocation, adds from the new), entering objects only the new, vanished
// objects only the old. Deltas are returned in ascending key order with
// sorted object lists, so the emission is deterministic.
func DiffSnapshot(prev map[model.ObjectID]geo.Point, s *model.Snapshot, lg, eps float64, mode grid.Mode) []CellDelta {
	cells := make(map[grid.Key]*CellDelta)
	get := func(k grid.Key) *CellDelta {
		c := cells[k]
		if c == nil {
			c = &CellDelta{Key: k}
			cells[k] = c
		}
		return c
	}
	del := func(id model.ObjectID, loc geo.Point) {
		grid.Allocate(0, loc, lg, eps, mode, func(o grid.Object) {
			c := get(o.Key)
			if o.Query {
				c.QueryDel = append(c.QueryDel, id)
			} else {
				c.DataDel = append(c.DataDel, id)
			}
		})
	}
	add := func(id model.ObjectID, loc geo.Point) {
		grid.Allocate(0, loc, lg, eps, mode, func(o grid.Object) {
			c := get(o.Key)
			if o.Query {
				c.QueryAdd = append(c.QueryAdd, IDLoc{ID: id, Loc: loc})
			} else {
				c.DataAdd = append(c.DataAdd, IDLoc{ID: id, Loc: loc})
			}
		})
	}

	seen := make(map[model.ObjectID]struct{}, len(s.Objects))
	for i, id := range s.Objects {
		loc := s.Locs[i]
		seen[id] = struct{}{}
		old, had := prev[id]
		if had && old == loc {
			continue
		}
		if had {
			del(id, old)
		}
		add(id, loc)
		prev[id] = loc
	}
	var gone []model.ObjectID
	for id := range prev {
		if _, ok := seen[id]; !ok {
			gone = append(gone, id)
		}
	}
	for _, id := range gone {
		del(id, prev[id])
		delete(prev, id)
	}

	out := make([]CellDelta, 0, len(cells))
	for _, c := range cells {
		sortIDs(c.DataDel)
		sortIDs(c.QueryDel)
		sortIDLocs(c.DataAdd)
		sortIDLocs(c.QueryAdd)
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.X != out[j].Key.X {
			return out[i].Key.X < out[j].Key.X
		}
		return out[i].Key.Y < out[j].Key.Y
	})
	return out
}

// DiffObjects is DiffSnapshot for an id-keyed shard of objects: the
// partitioned front end hands each allocate subtask only the (ids, locs)
// it observed this tick for its own key groups, with prev holding the
// shard's previous positions. Objects in prev but absent from ids are
// treated as vanished, exactly as in DiffSnapshot — so callers must pass
// the complete set of the shard's objects present at this tick. Because
// the object universe partitions across shards, concatenating every
// shard's deltas for a tick yields exactly the global DiffSnapshot result
// (per cell, merged lists remain disjoint; list order differs but the
// downstream delta application is order-independent within a tick).
func DiffObjects(prev map[model.ObjectID]geo.Point, ids []model.ObjectID, locs []geo.Point, lg, eps float64, mode grid.Mode) []CellDelta {
	s := &model.Snapshot{Objects: ids, Locs: locs}
	return DiffSnapshot(prev, s, lg, eps, mode)
}

func sortIDs(ids []model.ObjectID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortIDLocs(os []IDLoc) {
	sort.Slice(os, func(i, j int) bool { return os[i].ID < os[j].ID })
}
