package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func TestAblationVariantsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(120)
		s := randomSnapshot(rng, n, 25)
		eps := 0.3 + rng.Float64()*2
		lg := 0.5 + rng.Float64()*5
		p := Params{Eps: eps, CellWidth: lg, Metric: geo.L1}
		want := brutePairs(s, eps, geo.L1)
		for _, l1 := range []bool{false, true} {
			for _, l2 := range []bool{false, true} {
				e := NewAblation(p, l1, l2)
				got, _ := CollectPairs(e, s)
				if !pairsEqual(got, want) {
					t.Logf("%s: %d pairs, want %d", e.Name(), len(got), len(want))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAblationFullMatchesRJCExactly(t *testing.T) {
	// Both lemmas on: identical pair stream (no duplicates) to RJC.
	rng := rand.New(rand.NewSource(8))
	s := randomSnapshot(rng, 400, 20)
	p := Params{Eps: 1.0, CellWidth: 3, Metric: geo.L1}
	abl, ablRaw := CollectPairs(NewAblation(p, true, true), s)
	rjc, rjcRaw := CollectPairs(NewRJC(p), s)
	if !pairsEqual(abl, rjc) {
		t.Error("ablation[on,on] differs from RJC")
	}
	if ablRaw != rjcRaw {
		t.Errorf("raw emissions differ: %d vs %d", ablRaw, rjcRaw)
	}
}

func TestAblationName(t *testing.T) {
	p := Params{Eps: 1, CellWidth: 2, Metric: geo.L1}
	if got := NewAblation(p, true, false).Name(); got != "RJC[L1=true,L2=false]" {
		t.Errorf("Name = %q", got)
	}
}

// Disabling either lemma must increase raw work (duplicate production is
// internal, so measure replication instead).
func TestAblationReplicationCost(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := randomSnapshot(rng, 600, 25)
	eps, lg := 1.2, 2.0
	up := AllocateSnapshot(s, lg, eps, 0)   // grid.UpperHalf
	full := AllocateSnapshot(s, lg, eps, 1) // grid.FullRegion
	count := func(ts []CellTask) int {
		n := 0
		for _, t := range ts {
			n += len(t.Queries)
		}
		return n
	}
	if count(full) <= count(up) {
		t.Errorf("full replication (%d) should exceed upper-half (%d)",
			count(full), count(up))
	}
}
