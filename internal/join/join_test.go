package join

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/model"
)

func snapshotOf(pts []geo.Point) *model.Snapshot {
	s := &model.Snapshot{Tick: 1}
	for i, p := range pts {
		s.Add(model.ObjectID(i), p)
	}
	return s
}

func randomSnapshot(rng *rand.Rand, n int, extent float64) *model.Snapshot {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	return snapshotOf(pts)
}

func brutePairs(s *model.Snapshot, eps float64, m geo.Metric) [][2]int32 {
	var out [][2]int32
	BruteForce(s, eps, m, func(i, j int32) {
		out = append(out, [2]int32{i, j})
	})
	return out
}

func engines(p Params) []Engine {
	return []Engine{NewRJC(p), NewSRJ(p), NewGDC(p)}
}

func TestPaperFig2RangeJoin(t *testing.T) {
	// Fig. 2 at time 1: RJ(O, eps) = {(o1,o2), (o3,o4), (o5,o6), (o6,o7)}.
	// Reconstruct a layout with those adjacencies (ids are 0-based here).
	pts := []geo.Point{
		{X: 0, Y: 0},    // o1
		{X: 0.8, Y: 0},  // o2: close to o1
		{X: 5, Y: 0},    // o3
		{X: 5.8, Y: 0},  // o4: close to o3
		{X: 10, Y: 0},   // o5
		{X: 10.8, Y: 0}, // o6: close to o5
		{X: 11.6, Y: 0}, // o7: close to o6, not o5
		{X: 20, Y: 20},  // o8: isolated
	}
	s := snapshotOf(pts)
	want := [][2]int32{{0, 1}, {2, 3}, {4, 5}, {5, 6}}
	p := Params{Eps: 1.0, CellWidth: 2.5, Metric: geo.L1}
	for _, e := range engines(p) {
		got, _ := CollectPairs(e, s)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s pairs = %v, want %v", e.Name(), got, want)
		}
	}
}

func TestEnginesMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(150)
		// Cluster some points to force dense regions.
		s := randomSnapshot(rng, n, 30)
		eps := 0.3 + rng.Float64()*2.5
		lg := 0.5 + rng.Float64()*6
		for _, m := range []geo.Metric{geo.L1, geo.L2, geo.LInf} {
			want := brutePairs(s, eps, m)
			p := Params{Eps: eps, CellWidth: lg, Metric: m}
			for _, e := range engines(p) {
				got, _ := CollectPairs(e, s)
				if !pairsEqual(got, want) {
					t.Logf("%s mismatch: n=%d eps=%.3f lg=%.3f metric=%v got=%d want=%d",
						e.Name(), n, eps, lg, m, len(got), len(want))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func pairsEqual(a, b [][2]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Lemma 1 + Lemma 2 mean RJC emits zero duplicates; SRJ emits at least as
// many raw results as unique ones.
func TestRJCNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomSnapshot(rng, 500, 20) // dense: many pairs
	p := Params{Eps: 1.2, CellWidth: 2.0, Metric: geo.L1}

	pairs, raw := CollectPairs(NewRJC(p), s)
	if raw != len(pairs) {
		t.Errorf("RJC emitted %d raw pairs for %d unique: duplicates exist", raw, len(pairs))
	}

	gPairs, gRaw := CollectPairs(NewGDC(p), s)
	if gRaw != len(gPairs) {
		t.Errorf("GDC emitted %d raw pairs for %d unique", gRaw, len(gPairs))
	}

	if len(pairs) == 0 {
		t.Fatal("test workload produced no pairs; increase density")
	}
}

func TestSRJInternalDedup(t *testing.T) {
	// SRJ's Join already de-duplicates its output (the cost is internal);
	// its emitted stream must therefore also be unique.
	rng := rand.New(rand.NewSource(12))
	s := randomSnapshot(rng, 300, 15)
	p := Params{Eps: 1.0, CellWidth: 2.0, Metric: geo.L1}
	pairs, raw := CollectPairs(NewSRJ(p), s)
	if raw != len(pairs) {
		t.Errorf("SRJ leaked %d duplicates", raw-len(pairs))
	}
}

func TestAllocateSnapshotDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomSnapshot(rng, 200, 50)
	a := AllocateSnapshot(s, 3, 1, grid.UpperHalf)
	b := AllocateSnapshot(s, 3, 1, grid.UpperHalf)
	if !reflect.DeepEqual(a, b) {
		t.Error("AllocateSnapshot must be deterministic")
	}
	// Every data object appears in exactly one cell.
	seen := map[int32]int{}
	for _, c := range a {
		for _, d := range c.Data {
			seen[d.Idx]++
		}
	}
	if len(seen) != s.Len() {
		t.Errorf("data coverage %d of %d", len(seen), s.Len())
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("index %d assigned to %d cells", idx, n)
		}
	}
}

func TestUpperHalfReplicatesLess(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randomSnapshot(rng, 400, 40)
	count := func(mode grid.Mode) int {
		total := 0
		for _, c := range AllocateSnapshot(s, 1.5, 1.0, mode) {
			total += len(c.Queries)
		}
		return total
	}
	up, full := count(grid.UpperHalf), count(grid.FullRegion)
	if up >= full {
		t.Errorf("upper-half replication (%d) should be below full (%d)", up, full)
	}
}

func TestEmptyAndSingletonSnapshots(t *testing.T) {
	p := Params{Eps: 1, CellWidth: 2, Metric: geo.L1}
	for _, e := range engines(p) {
		for _, s := range []*model.Snapshot{
			snapshotOf(nil),
			snapshotOf([]geo.Point{{X: 1, Y: 1}}),
		} {
			got, _ := CollectPairs(e, s)
			if len(got) != 0 {
				t.Errorf("%s on %d points emitted %v", e.Name(), s.Len(), got)
			}
		}
	}
}

func TestCoincidentPoints(t *testing.T) {
	// All points identical: every pair qualifies.
	pts := make([]geo.Point, 12)
	for i := range pts {
		pts[i] = geo.Point{X: 3.3, Y: 4.4}
	}
	s := snapshotOf(pts)
	p := Params{Eps: 0.5, CellWidth: 1, Metric: geo.L1}
	want := 12 * 11 / 2
	for _, e := range engines(p) {
		got, _ := CollectPairs(e, s)
		if len(got) != want {
			t.Errorf("%s on coincident points: %d pairs, want %d", e.Name(), len(got), want)
		}
	}
}

func TestNegativeCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := make([]geo.Point, 80)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64()*20 - 10, Y: rng.Float64()*20 - 10}
	}
	s := snapshotOf(pts)
	eps := 1.3
	p := Params{Eps: eps, CellWidth: 2.1, Metric: geo.L1}
	want := brutePairs(s, eps, geo.L1)
	for _, e := range engines(p) {
		got, _ := CollectPairs(e, s)
		if !pairsEqual(got, want) {
			t.Errorf("%s with negative coords: %d pairs, want %d",
				e.Name(), len(got), len(want))
		}
	}
}

func BenchmarkRJC(b *testing.B) { benchEngine(b, "RJC") }
func BenchmarkSRJ(b *testing.B) { benchEngine(b, "SRJ") }
func BenchmarkGDC(b *testing.B) { benchEngine(b, "GDC") }

func benchEngine(b *testing.B, name string) {
	rng := rand.New(rand.NewSource(1))
	s := randomSnapshot(rng, 5000, 100)
	p := Params{Eps: 0.8, CellWidth: 4, Metric: geo.L1}
	var e Engine
	switch name {
	case "RJC":
		e = NewRJC(p)
	case "SRJ":
		e = NewSRJ(p)
	case "GDC":
		e = NewGDC(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		e.Join(s, func(i, j int32) { n++ })
	}
}
