package join

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/model"
)

// incWorld drives the full incremental join machinery over object-level
// snapshots: DiffSnapshot feeds per-cell IncCell states, owned-pair
// deltas are netted per tick, and the resulting pair set is maintained.
type incWorld struct {
	prev  map[model.ObjectID]geo.Point
	cells map[grid.Key]*IncCell
	pairs map[[2]model.ObjectID]struct{}
	lg    float64
	eps   float64
	m     geo.Metric
}

func newIncWorld(lg, eps float64, m geo.Metric) *incWorld {
	return &incWorld{
		prev:  make(map[model.ObjectID]geo.Point),
		cells: make(map[grid.Key]*IncCell),
		pairs: make(map[[2]model.ObjectID]struct{}),
		lg:    lg,
		eps:   eps,
		m:     m,
	}
}

func (w *incWorld) tick(t testing.TB, s *model.Snapshot) {
	t.Helper()
	net := make(map[[2]model.ObjectID]int)
	emit := func(add bool, a, b model.ObjectID) {
		p := [2]model.ObjectID{a, b}
		if add {
			net[p]++
		} else {
			net[p]--
		}
	}
	for _, d := range DiffSnapshot(w.prev, s, w.lg, w.eps, grid.UpperHalf) {
		c := w.cells[d.Key]
		if c == nil {
			c = NewIncCell(w.eps)
			w.cells[d.Key] = c
		}
		c.Apply(d.DataDel, d.QueryDel, d.DataAdd, d.QueryAdd, w.eps, w.m, emit)
		if c.Empty() {
			delete(w.cells, d.Key)
		}
	}
	for p, n := range net {
		switch n {
		case 0: // ownership moved between cells, or a move kept the pair
		case 1:
			if _, dup := w.pairs[p]; dup {
				t.Fatalf("pair %v added but already present", p)
			}
			w.pairs[p] = struct{}{}
		case -1:
			if _, ok := w.pairs[p]; !ok {
				t.Fatalf("pair %v deleted but absent", p)
			}
			delete(w.pairs, p)
		default:
			t.Fatalf("pair %v netted to %d", p, n)
		}
	}
}

// expected computes the brute-force pair set of a snapshot, by object id.
func expected(s *model.Snapshot, eps float64, m geo.Metric) map[[2]model.ObjectID]struct{} {
	out := make(map[[2]model.ObjectID]struct{})
	BruteForce(s, eps, m, func(i, j int32) {
		a, b := s.Objects[i], s.Objects[j]
		if a > b {
			a, b = b, a
		}
		out[[2]model.ObjectID{a, b}] = struct{}{}
	})
	return out
}

// TestIncCellMatchesBruteForce evolves random workloads — objects moving
// by variable churn, entering and leaving, with duplicate (zero-delta)
// ticks — and pins the netted incremental pair set to the brute-force
// join at every tick.
func TestIncCellMatchesBruteForce(t *testing.T) {
	const (
		eps    = 10.0
		lg     = 4 * eps
		extent = 300.0
	)
	for _, metric := range []geo.Metric{geo.L1, geo.L2} {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			w := newIncWorld(lg, eps, metric)
			locs := make(map[model.ObjectID]geo.Point)
			const numIDs = 60
			for tick := 0; tick < 40; tick++ {
				churn := rng.Float64()
				switch tick % 10 {
				case 3:
					churn = 0 // duplicate tick: nobody moves
				case 7:
					churn = 1 // full churn: everybody moves
				}
				for id := model.ObjectID(0); id < numIDs; id++ {
					_, here := locs[id]
					switch {
					case !here && rng.Float64() < 0.25:
						locs[id] = geo.Point{
							X: rng.Float64() * extent,
							Y: rng.Float64() * extent,
						}
					case here && rng.Float64() < 0.08:
						delete(locs, id)
					case here && rng.Float64() < churn:
						p := locs[id]
						locs[id] = geo.Point{
							X: p.X + (rng.Float64()-0.5)*2*eps,
							Y: p.Y + (rng.Float64()-0.5)*2*eps,
						}
					}
				}
				s := &model.Snapshot{Tick: model.Tick(tick)}
				for id := model.ObjectID(0); id < numIDs; id++ {
					if p, ok := locs[id]; ok {
						s.Add(id, p)
					}
				}
				w.tick(t, s)
				want := expected(s, eps, metric)
				if len(w.pairs) != len(want) {
					t.Fatalf("metric=%v seed=%d tick=%d: %d pairs, want %d",
						metric, seed, tick, len(w.pairs), len(want))
				}
				for p := range want {
					if _, ok := w.pairs[p]; !ok {
						t.Fatalf("metric=%v seed=%d tick=%d: missing pair %v", metric, seed, tick, p)
					}
				}
			}
		}
	}
}

// TestIncCellBoundaryTies pins the lexAbove tie-break: objects sharing a
// y band or exact locations on cell boundaries must still produce each
// pair exactly once across cells.
func TestIncCellBoundaryTies(t *testing.T) {
	const (
		eps = 5.0
		lg  = 10.0
	)
	w := newIncWorld(lg, eps, geo.L1)
	// Same y, straddling a vertical cell boundary; plus an exact-boundary
	// point and a coincident pair.
	s := &model.Snapshot{Tick: 1}
	s.Add(1, geo.Point{X: 9, Y: 3})
	s.Add(2, geo.Point{X: 11, Y: 3})  // same band, next cell
	s.Add(3, geo.Point{X: 10, Y: 3})  // exactly on the boundary
	s.Add(4, geo.Point{X: 9, Y: 3})   // coincident with object 1
	s.Add(5, geo.Point{X: 9, Y: 7.5}) // within eps of 1/3/4 vertically
	w.tick(t, s)
	want := expected(s, eps, geo.L1)
	if len(w.pairs) != len(want) {
		t.Fatalf("got %d pairs %v, want %d", len(w.pairs), w.pairs, len(want))
	}
	// Everybody leaves: pair set must drain to empty.
	w.tick(t, &model.Snapshot{Tick: 2})
	if len(w.pairs) != 0 {
		t.Fatalf("pairs left after all objects vanished: %v", w.pairs)
	}
	if len(w.cells) != 0 {
		t.Fatalf("cells left after all objects vanished: %d", len(w.cells))
	}
}

// BenchmarkCellJoin compares the from-scratch per-cell join against the
// incremental path at low churn, and reports allocations.
func BenchmarkCellJoin(b *testing.B) {
	const (
		eps = 10.0
		lg  = 4 * eps
		n   = 500
	)
	rng := rand.New(rand.NewSource(1))
	s := &model.Snapshot{Tick: 1}
	for i := 0; i < n; i++ {
		s.Add(model.ObjectID(i), geo.Point{X: rng.Float64() * 400, Y: rng.Float64() * 400})
	}
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		tasks := AllocateSnapshot(s, lg, eps, grid.UpperHalf)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, task := range tasks {
				RunCellRJC(task, eps, geo.L1, func(i, j int32) {})
			}
		}
	})
	b.Run("incremental-10pct", func(b *testing.B) {
		b.ReportAllocs()
		w := newIncWorld(lg, eps, geo.L1)
		w.tick(b, s)
		cur := s
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			next := &model.Snapshot{Tick: cur.Tick + 1}
			for j := 0; j < n; j++ {
				p := cur.Locs[j]
				if j%10 == i%10 {
					p.X += (rng.Float64() - 0.5) * eps
					p.Y += (rng.Float64() - 0.5) * eps
				}
				next.Add(cur.Objects[j], p)
			}
			emit := func(add bool, a, b model.ObjectID) {}
			for _, d := range DiffSnapshot(w.prev, next, lg, eps, grid.UpperHalf) {
				c := w.cells[d.Key]
				if c == nil {
					c = NewIncCell(eps)
					w.cells[d.Key] = c
				}
				c.Apply(d.DataDel, d.QueryDel, d.DataAdd, d.QueryAdd, eps, geo.L1, emit)
				if c.Empty() {
					delete(w.cells, d.Key)
				}
			}
			cur = next
		}
	})
}
