package join

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/rtree"
)

// Ablation is an RJC variant with either optimization lemma disabled,
// isolating each lemma's contribution to the range-join cost:
//
//   - Lemma1 off: query objects are replicated into the full range region
//     instead of its upper half (double replication; mirrored duplicates
//     must be removed).
//   - Lemma2 off: each cell builds its R-tree completely before probing
//     (every within-cell pair is found twice; duplicates removed).
//
// With both lemmas on this is exactly RJC; with both off it is SRJ.
type Ablation struct {
	p      Params
	lemma1 bool
	lemma2 bool
	raw    int
}

// Raw returns the cumulative number of pair emissions before duplicate
// filtering — the wasted work a disabled lemma causes.
func (e *Ablation) Raw() int { return e.raw }

// NewAblation returns an RJC variant with the chosen lemmas enabled.
func NewAblation(p Params, lemma1, lemma2 bool) *Ablation {
	return &Ablation{p: p, lemma1: lemma1, lemma2: lemma2}
}

// Name implements Engine.
func (e *Ablation) Name() string {
	return fmt.Sprintf("RJC[L1=%v,L2=%v]", e.lemma1, e.lemma2)
}

// Join implements Engine.
func (e *Ablation) Join(s *model.Snapshot, emit PairEmit) {
	mode := grid.UpperHalf
	if !e.lemma1 {
		mode = grid.FullRegion
	}
	tasks := AllocateSnapshot(s, e.p.CellWidth, e.p.Eps, mode)

	// Either disabled lemma introduces duplicates that must be filtered —
	// the cost the ablation measures.
	needDedup := !e.lemma1 || !e.lemma2
	var seen map[uint64]struct{}
	out := func(i, j int32) {
		e.raw++
		emit(i, j)
	}
	if needDedup {
		seen = make(map[uint64]struct{}, s.Len()*2)
		out = func(i, j int32) {
			e.raw++
			k := uint64(uint32(i))<<32 | uint64(uint32(j))
			if _, ok := seen[k]; ok {
				return
			}
			seen[k] = struct{}{}
			emit(i, j)
		}
	}
	for _, task := range tasks {
		switch {
		case e.lemma2 && e.lemma1:
			RunCellRJC(task, e.p.Eps, e.p.Metric, out)
		case e.lemma2 && !e.lemma1:
			// Interleaved build+probe for data objects still avoids
			// within-cell duplicates, but the full-region replicas mirror
			// every cross-cell pair.
			runCellLemma2Full(task, e.p, out)
		default:
			RunCellSRJ(task, e.p.Eps, e.p.Metric, out)
		}
	}
}

// runCellLemma2Full is RunCellRJC without the Lemma 1 probe restriction:
// query objects probe their whole range region, so cross-cell pairs are
// reported by both endpoints' replicas.
func runCellLemma2Full(task CellTask, p Params, emit PairEmit) {
	if len(task.Data) == 0 {
		return
	}
	rt := rtree.New()
	for _, d := range task.Data {
		rt.SearchWithin(d.Loc, p.Eps, p.Metric, func(it rtree.Item) bool {
			orderedEmit(emit, d.Idx, int32(it.ID))
			return true
		})
		rt.Insert(d.Loc, int64(d.Idx))
	}
	for _, q := range task.Queries {
		rt.SearchWithin(q.Loc, p.Eps, p.Metric, func(it rtree.Item) bool {
			orderedEmit(emit, q.Idx, int32(it.ID))
			return true
		})
	}
}
