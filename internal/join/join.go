// Package join implements the self range join RJ(O, eps) over one snapshot
// (Definition 11) with three engines:
//
//   - RJC — the paper's method (Section 5.2): GR-index with Lemma 1
//     upper-half replication and Lemma 2 interleaved query-then-insert, so
//     every qualifying pair is produced exactly once with no de-duplication.
//   - SRJ — the streaming-range-join baseline: full-region replication and
//     build-then-probe local R-trees; duplicates are filtered downstream.
//   - GDC — the grid-based DBSCAN baseline: cell width = eps, 3x3
//     neighbourhood probing; suffers from very many tiny cells.
//
// All engines emit index pairs (i, j), i < j, over the snapshot's location
// array, each exactly once, equal to the brute-force join.
package join

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/rtree"
)

// PairEmit receives one qualifying pair of snapshot indices, i < j.
type PairEmit func(i, j int32)

// Engine computes a self range join over a snapshot.
type Engine interface {
	// Name identifies the engine in benchmark output.
	Name() string
	// Join emits every pair of locations within eps exactly once.
	Join(s *model.Snapshot, emit PairEmit)
}

// Params bundles the knobs shared by the engines.
type Params struct {
	// Eps is the join distance threshold.
	Eps float64
	// CellWidth is the grid cell width lg (ignored by GDC, which uses Eps).
	CellWidth float64
	// Metric is the distance function (the paper uses L1).
	Metric geo.Metric
}

// CellObj is one location routed into a cell: the point itself plus its
// position in the originating snapshot. Cell tasks carry their objects by
// value, so a task is self-contained and can be shipped to a subtask in
// another OS process without a back-reference into the snapshot.
type CellObj struct {
	Idx int32
	Loc geo.Point
}

// CellTask is the unit of distributed work for the grid-partitioned
// engines: one grid cell with the data and query objects routed to it.
// Idx fields refer to positions in the originating snapshot; Loc fields
// make the task independent of it.
type CellTask struct {
	Key     grid.Key
	Data    []CellObj
	Queries []CellObj
}

// AllocateSnapshot partitions a snapshot into cell tasks (the GridAllocate
// stage). Mode selects Lemma 1 (UpperHalf, RJC) or full replication (SRJ).
// Tasks are returned in deterministic key order.
func AllocateSnapshot(s *model.Snapshot, lg, eps float64, mode grid.Mode) []CellTask {
	cells := make(map[grid.Key]*CellTask)
	for i := range s.Locs {
		grid.Allocate(int32(i), s.Locs[i], lg, eps, mode, func(o grid.Object) {
			c := cells[o.Key]
			if c == nil {
				c = &CellTask{Key: o.Key}
				cells[o.Key] = c
			}
			if o.Query {
				c.Queries = append(c.Queries, CellObj{Idx: o.Index, Loc: o.Loc})
			} else {
				c.Data = append(c.Data, CellObj{Idx: o.Index, Loc: o.Loc})
			}
		})
	}
	out := make([]CellTask, 0, len(cells))
	for _, c := range cells {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.X != out[j].Key.X {
			return out[i].Key.X < out[j].Key.X
		}
		return out[i].Key.Y < out[j].Key.Y
	})
	return out
}

// AllocateObjects partitions an id-keyed shard of objects into cell tasks.
// It is AllocateSnapshot for the partitioned front end: each allocate
// subtask only sees its own key groups, so there is no global snapshot to
// index into and tasks carry object IDs (Idx = int32(id)) instead of
// snapshot positions. Partial tasks for the same cell produced by different
// shards concatenate into exactly the task AllocateSnapshot would build
// (module Idx naming), because grid.Allocate is per-object. Tasks are
// returned in deterministic key order.
func AllocateObjects(ids []model.ObjectID, locs []geo.Point, lg, eps float64, mode grid.Mode) []CellTask {
	cells := make(map[grid.Key]*CellTask)
	for i := range ids {
		grid.Allocate(int32(ids[i]), locs[i], lg, eps, mode, func(o grid.Object) {
			c := cells[o.Key]
			if c == nil {
				c = &CellTask{Key: o.Key}
				cells[o.Key] = c
			}
			if o.Query {
				c.Queries = append(c.Queries, CellObj{Idx: o.Index, Loc: o.Loc})
			} else {
				c.Data = append(c.Data, CellObj{Idx: o.Index, Loc: o.Loc})
			}
		})
	}
	out := make([]CellTask, 0, len(cells))
	for _, c := range cells {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.X != out[j].Key.X {
			return out[i].Key.X < out[j].Key.X
		}
		return out[i].Key.Y < out[j].Key.Y
	})
	return out
}

// orderedEmit normalizes a pair to (min, max) before emitting.
func orderedEmit(emit PairEmit, a, b int32) {
	if a == b {
		return
	}
	if a > b {
		a, b = b, a
	}
	emit(a, b)
}

// lexAbove reports whether v is strictly above q in (y, x) lexicographic
// order. Cross-cell pairs are claimed by the lower endpoint's query replica
// so that each pair is emitted exactly once: both endpoints may hold a
// replica in the other's cell when they share a horizontal band, and this
// tie-break (the epsilon-grid-order convention the paper cites as [4])
// ensures only one of the two probes reports the pair.
func lexAbove(v, q geo.Point) bool {
	return v.Y > q.Y || (v.Y == q.Y && v.X > q.X)
}

// RunCellRJC executes the GridQuery algorithm (Algorithm 2) for one cell:
// data objects are range-queried against the R-tree built so far and then
// inserted (Lemma 2), after which query objects are probed read-only over
// the upper half of their range region (Lemma 1). Every emitted pair is
// unique across all cells: within-cell pairs are produced once by the
// interleaved build (Lemma 2), cross-cell pairs once by the lower
// endpoint's replica (lexAbove).
func RunCellRJC(task CellTask, eps float64, m geo.Metric, emit PairEmit) {
	if len(task.Data) == 0 {
		return // query-only cells can never produce new pairs
	}
	rt := rtree.New()
	for _, d := range task.Data {
		rt.SearchWithin(d.Loc, eps, m, func(it rtree.Item) bool {
			orderedEmit(emit, d.Idx, int32(it.ID))
			return true
		})
		rt.Insert(d.Loc, int64(d.Idx))
	}
	for _, q := range task.Queries {
		rt.Search(geo.UpperHalfAround(q.Loc, eps), func(it rtree.Item) bool {
			if lexAbove(it.P, q.Loc) && q.Loc.Within(it.P, eps, m) {
				orderedEmit(emit, q.Idx, int32(it.ID))
			}
			return true
		})
	}
}

// RunCellSRJ executes the baseline cell processing: the R-tree is fully
// built first, then every data and query object probes it. Pairs within a
// cell and across mirrored query replicas are produced more than once; the
// caller must de-duplicate.
func RunCellSRJ(task CellTask, eps float64, m geo.Metric, emit PairEmit) {
	if len(task.Data) == 0 {
		return
	}
	rt := rtree.New()
	for _, d := range task.Data {
		rt.Insert(d.Loc, int64(d.Idx))
	}
	probe := func(o CellObj) {
		rt.SearchWithin(o.Loc, eps, m, func(it rtree.Item) bool {
			orderedEmit(emit, o.Idx, int32(it.ID))
			return true
		})
	}
	for _, d := range task.Data {
		probe(d)
	}
	for _, q := range task.Queries {
		probe(q)
	}
}

// RJC is the paper's range-join engine.
type RJC struct{ p Params }

// NewRJC returns the RJC engine.
func NewRJC(p Params) *RJC { return &RJC{p: p} }

// Name implements Engine.
func (e *RJC) Name() string { return "RJC" }

// Join implements Engine.
func (e *RJC) Join(s *model.Snapshot, emit PairEmit) {
	tasks := AllocateSnapshot(s, e.p.CellWidth, e.p.Eps, grid.UpperHalf)
	for _, task := range tasks {
		RunCellRJC(task, e.p.Eps, e.p.Metric, emit)
	}
}

// SRJ is the build-then-probe, full-replication baseline.
type SRJ struct{ p Params }

// NewSRJ returns the SRJ engine.
func NewSRJ(p Params) *SRJ { return &SRJ{p: p} }

// Name implements Engine.
func (e *SRJ) Name() string { return "SRJ" }

// Join implements Engine. Duplicates produced by the symmetric replication
// are removed here, mirroring the de-duplication cost the paper attributes
// to SRJ.
func (e *SRJ) Join(s *model.Snapshot, emit PairEmit) {
	tasks := AllocateSnapshot(s, e.p.CellWidth, e.p.Eps, grid.FullRegion)
	seen := make(map[uint64]struct{}, s.Len()*2)
	dedup := func(i, j int32) {
		k := uint64(uint32(i))<<32 | uint64(uint32(j))
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		emit(i, j)
	}
	for _, task := range tasks {
		RunCellSRJ(task, e.p.Eps, e.p.Metric, dedup)
	}
}

// GDC is the grid-based DBSCAN baseline: the space is divided into cells of
// width eps and each point probes its 3x3 cell neighbourhood. The cell
// count explodes for small eps, which is the overhead the paper measures.
type GDC struct{ p Params }

// NewGDC returns the GDC engine. CellWidth is ignored: GDC always uses Eps
// as the cell width, per the paper's description.
func NewGDC(p Params) *GDC { return &GDC{p: p} }

// Name implements Engine.
func (e *GDC) Name() string { return "GDC" }

// Join implements Engine.
func (e *GDC) Join(s *model.Snapshot, emit PairEmit) {
	eps := e.p.Eps
	cells := make(map[grid.Key][]int32)
	for i := range s.Locs {
		k := grid.KeyOf(s.Locs[i], eps)
		cells[k] = append(cells[k], int32(i))
	}
	for k, members := range cells {
		for _, i := range members {
			p := s.Locs[i]
			for dx := int32(-1); dx <= 1; dx++ {
				for dy := int32(-1); dy <= 1; dy++ {
					nk := grid.Key{X: k.X + dx, Y: k.Y + dy}
					for _, j := range cells[nk] {
						// Emit each unordered pair once: the lower-index
						// endpoint is responsible for it.
						if j <= i {
							continue
						}
						if p.Within(s.Locs[j], eps, e.p.Metric) {
							emit(i, j)
						}
					}
				}
			}
		}
	}
}

// BruteForce emits all qualifying pairs by scanning every pair. It is the
// O(n^2) oracle the engines are validated against.
func BruteForce(s *model.Snapshot, eps float64, m geo.Metric, emit PairEmit) {
	n := s.Len()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.Locs[i].Within(s.Locs[j], eps, m) {
				emit(int32(i), int32(j))
			}
		}
	}
}

// CollectPairs runs an engine and returns its sorted, de-duplicated pair
// list along with the raw emit count (to measure duplicate production).
func CollectPairs(e Engine, s *model.Snapshot) (pairs [][2]int32, rawEmits int) {
	e.Join(s, func(i, j int32) {
		rawEmits++
		pairs = append(pairs, [2]int32{i, j})
	})
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	// Remove duplicates (engines other than SRJ should produce none).
	out := pairs[:0]
	for i, p := range pairs {
		if i == 0 || p != pairs[i-1] {
			out = append(out, p)
		}
	}
	return out, rawEmits
}
