// Incremental per-cell join state: instead of rebuilding an R-tree per
// cell per tick, each grid cell keeps a persistent index of its data and
// query objects and turns enter/leave/move deltas into owned-pair deltas.
//
// A cell C owns a qualifying pair {a, b} exactly when RunCellRJC would
// emit it while processing C: either both endpoints are data objects of C
// (the interleaved build of Lemma 2 produces the pair once, in the shared
// home cell), or one endpoint is a data object of C and the other a query
// replica in C with the data endpoint lexicographically above the query
// endpoint (Lemma 1: the lex-lower endpoint's upper-half replication
// reaches the lex-higher endpoint's home cell, and only that probe
// reports the pair). Ownership partitions the global pair set per tick,
// so summing owned-pair deltas over all cells reproduces the transition
// of the full join result. Deltas are identified by object id, not
// snapshot index — indices shift between ticks, ids do not.
package join

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/model"
)

// IDLoc is one object routed into a cell, carried by id (stable across
// ticks) instead of snapshot index.
type IDLoc struct {
	ID  model.ObjectID
	Loc geo.Point
}

// Entry is one indexed object plus its role in the cell: a data object
// (the cell is its home) or a query replica. An object never holds both
// roles in the same cell — grid allocation assigns exactly one — so both
// roles share one index and one bucket scan covers a point's candidates
// of either kind.
type Entry struct {
	ID    model.ObjectID
	Loc   geo.Point
	Query bool
}

type locRole struct {
	loc   geo.Point
	query bool
}

// CellIndex is a cell-local point index bucketed at eps resolution: every
// within-eps neighbour of a point lies in the 3x3 bucket block around it
// (any metric ball of radius eps fits in the Chebyshev ball), so lookups
// scan at most nine buckets. Insert and delete are O(bucket).
type CellIndex struct {
	eps     float64
	buckets map[grid.Key][]Entry
	locs    map[model.ObjectID]locRole
}

// NewCellIndex returns an empty index with bucket width eps.
func NewCellIndex(eps float64) *CellIndex {
	return &CellIndex{
		eps:     eps,
		buckets: make(map[grid.Key][]Entry),
		locs:    make(map[model.ObjectID]locRole),
	}
}

// Len returns the number of indexed objects (both roles).
func (x *CellIndex) Len() int { return len(x.locs) }

// Insert adds one object under the given role. Inserting an id that is
// already present panics: it means the delta stream desynchronized from
// the index.
func (x *CellIndex) Insert(id model.ObjectID, loc geo.Point, query bool) {
	if _, dup := x.locs[id]; dup {
		panic("join: cell index duplicate insert")
	}
	x.locs[id] = locRole{loc: loc, query: query}
	k := grid.KeyOf(loc, x.eps)
	x.buckets[k] = append(x.buckets[k], Entry{ID: id, Loc: loc, Query: query})
}

// Delete removes one object and returns its location and role. Deleting
// an absent id panics, for the same reason Insert does.
func (x *CellIndex) Delete(id model.ObjectID) (geo.Point, bool) {
	lr, ok := x.locs[id]
	if !ok {
		panic("join: cell index delete of absent id")
	}
	delete(x.locs, id)
	k := grid.KeyOf(lr.loc, x.eps)
	b := x.buckets[k]
	for i := range b {
		if b[i].ID == id {
			b[i] = b[len(b)-1]
			b = b[:len(b)-1]
			break
		}
	}
	if len(b) == 0 {
		delete(x.buckets, k)
	} else {
		x.buckets[k] = b
	}
	return lr.loc, lr.query
}

// ForNear calls fn for every indexed object whose location can be within
// eps of p (the 3x3 bucket block); fn must apply the exact metric test.
func (x *CellIndex) ForNear(p geo.Point, fn func(Entry)) {
	for _, b := range x.NearBuckets(p) {
		for _, o := range b {
			fn(o)
		}
	}
}

// NearBuckets returns the 3x3 bucket block around p — every indexed object
// within eps of p lies in one of the returned slices (callers apply the
// exact metric test). The slice headers are returned by value; no
// allocation, and hot callers iterate without per-object closure calls.
func (x *CellIndex) NearBuckets(p geo.Point) [9][]Entry {
	c := grid.KeyOf(p, x.eps)
	var out [9][]Entry
	i := 0
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			out[i] = x.buckets[grid.Key{X: c.X + dx, Y: c.Y + dy}]
			i++
		}
	}
	return out
}

// Entries returns the indexed objects of one role sorted by id (snapshot
// encoding).
func (x *CellIndex) Entries(query bool) []IDLoc {
	var out []IDLoc
	for id, lr := range x.locs {
		if lr.query == query {
			out = append(out, IDLoc{ID: id, Loc: lr.loc})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PairDeltaEmit receives one owned-pair transition: add reports whether
// the pair entered (true) or left (false) the cell's owned set. Endpoints
// are normalized a < b by the caller of the emit.
type PairDeltaEmit func(add bool, a, b model.ObjectID)

// IncCell is the persistent state of one grid cell under incremental
// maintenance: its data objects and query replicas in one flagged index.
type IncCell struct {
	Idx *CellIndex
}

// NewIncCell returns an empty cell with an index bucketed at eps.
func NewIncCell(eps float64) *IncCell {
	return &IncCell{Idx: NewCellIndex(eps)}
}

// Empty reports whether the cell holds no objects (and can be dropped).
func (c *IncCell) Empty() bool { return c.Idx.Len() == 0 }

// Apply advances the cell by one tick's object deltas and emits the
// resulting owned-pair deltas. All removals are processed before all
// insertions: each removed object reports owned pairs against the state
// that still holds its not-yet-removed peers (so a pair losing both
// endpoints is reported once), and each inserted object reports owned
// pairs against the state holding its already-inserted peers (so a pair
// gaining both endpoints is reported once). An object that moved within
// the cell appears in both the del and add lists; if the pair survives
// the move, the emitted -/+ cancel in the consumer's per-tick netting.
func (c *IncCell) Apply(
	dataDel, queryDel []model.ObjectID,
	dataAdd, queryAdd []IDLoc,
	eps float64, m geo.Metric, emit PairDeltaEmit,
) {
	for _, id := range dataDel {
		loc, query := c.Idx.Delete(id)
		if query {
			panic("join: data delete of a query replica, delta stream desynchronized")
		}
		c.owned(Entry{ID: id, Loc: loc}, eps, m, false, emit)
	}
	for _, id := range queryDel {
		loc, query := c.Idx.Delete(id)
		if !query {
			panic("join: query delete of a data object, delta stream desynchronized")
		}
		c.owned(Entry{ID: id, Loc: loc, Query: true}, eps, m, false, emit)
	}
	for _, o := range dataAdd {
		c.owned(Entry{ID: o.ID, Loc: o.Loc}, eps, m, true, emit)
		c.Idx.Insert(o.ID, o.Loc, false)
	}
	for _, o := range queryAdd {
		c.owned(Entry{ID: o.ID, Loc: o.Loc, Query: true}, eps, m, true, emit)
		c.Idx.Insert(o.ID, o.Loc, true)
	}
}

// owned emits the owned pairs involving e under the current index state.
// For a data object: all within-eps data peers, plus within-eps query
// replicas it is lexicographically above. For a query replica: within-eps
// data objects lexicographically above it.
func (c *IncCell) owned(e Entry, eps float64, m geo.Metric, add bool, emit PairDeltaEmit) {
	if e.Query {
		for _, b := range c.Idx.NearBuckets(e.Loc) {
			for _, o := range b {
				if o.Query || o.ID == e.ID || !e.Loc.Within(o.Loc, eps, m) {
					continue
				}
				if lexAbove(o.Loc, e.Loc) {
					emitNorm(emit, add, e.ID, o.ID)
				}
			}
		}
		return
	}
	for _, b := range c.Idx.NearBuckets(e.Loc) {
		for _, o := range b {
			if o.ID == e.ID || !e.Loc.Within(o.Loc, eps, m) {
				continue
			}
			if !o.Query || lexAbove(e.Loc, o.Loc) {
				emitNorm(emit, add, e.ID, o.ID)
			}
		}
	}
}

func emitNorm(emit PairDeltaEmit, add bool, a, b model.ObjectID) {
	if a > b {
		a, b = b, a
	}
	emit(add, a, b)
}
