// Package patstore is an in-memory, indexed store for detected co-movement
// patterns — the component downstream applications (future-movement
// prediction, compression, fleet analytics) query. It supports lookups by
// member object, by time overlap, by group containment, and subsumption
// filtering to maximal patterns.
//
// The store is safe for one writer (the detection pipeline's sink) and
// concurrent readers.
package patstore

import (
	"sort"
	"sync"

	"repro/internal/model"
)

// Entry is one stored pattern with its insertion sequence number.
type Entry struct {
	Seq     uint64
	Pattern model.Pattern
}

// Store indexes patterns by member object and by time interval.
type Store struct {
	mu      sync.RWMutex
	entries []Entry
	byObj   map[model.ObjectID][]int // entry indexes, ascending
	nextSeq uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{byObj: make(map[model.ObjectID][]int)}
}

// Add inserts one pattern and returns its sequence number. The pattern is
// stored as given (callers should pass normalized patterns: objects sorted,
// times increasing).
func (s *Store) Add(p model.Pattern) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.nextSeq
	s.nextSeq++
	idx := len(s.entries)
	s.entries = append(s.entries, Entry{Seq: seq, Pattern: p})
	for _, o := range p.Objects {
		s.byObj[o] = append(s.byObj[o], idx)
	}
	return seq
}

// Len returns the number of stored patterns.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// All returns every stored pattern in insertion order.
func (s *Store) All() []model.Pattern {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]model.Pattern, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.Pattern
	}
	return out
}

// ByObject returns all patterns containing the object, in insertion order.
func (s *Store) ByObject(o model.ObjectID) []model.Pattern {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idxs := s.byObj[o]
	out := make([]model.Pattern, len(idxs))
	for i, idx := range idxs {
		out[i] = s.entries[idx].Pattern
	}
	return out
}

// Overlapping returns all patterns whose time sequence intersects
// [from, to], inclusive.
func (s *Store) Overlapping(from, to model.Tick) []model.Pattern {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []model.Pattern
	for _, e := range s.entries {
		ts := e.Pattern.Times
		if len(ts) == 0 {
			continue
		}
		if ts[0] <= to && ts[len(ts)-1] >= from {
			out = append(out, e.Pattern)
		}
	}
	return out
}

// Containing returns all patterns whose object set is a superset of the
// given group (group must be sorted ascending).
func (s *Store) Containing(group []model.ObjectID) []model.Pattern {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(group) == 0 {
		return s.allLocked()
	}
	// Walk the rarest member's posting list.
	best := s.byObj[group[0]]
	for _, o := range group[1:] {
		if l := s.byObj[o]; len(l) < len(best) {
			best = l
		}
	}
	var out []model.Pattern
	for _, idx := range best {
		if containsAll(s.entries[idx].Pattern.Objects, group) {
			out = append(out, s.entries[idx].Pattern)
		}
	}
	return out
}

func (s *Store) allLocked() []model.Pattern {
	out := make([]model.Pattern, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.Pattern
	}
	return out
}

// containsAll reports whether sorted slice a contains every element of
// sorted slice b.
func containsAll(a, b []model.ObjectID) bool {
	i := 0
	for _, want := range b {
		for i < len(a) && a[i] < want {
			i++
		}
		if i >= len(a) || a[i] != want {
			return false
		}
	}
	return true
}

// Maximal returns the patterns not subsumed by any other stored pattern: a
// pattern is subsumed when another pattern has a superset of its objects
// and a superset of its witness ticks. Enumerators report every valid
// subset (as the paper defines the output); Maximal reduces the result to
// the frontier applications usually want.
func (s *Store) Maximal() []model.Pattern {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []model.Pattern
	for i, e := range s.entries {
		p := e.Pattern
		subsumed := false
		if len(p.Objects) > 0 {
			// Candidate subsumers must contain p's first object.
			for _, j := range s.byObj[p.Objects[0]] {
				if i == j {
					continue
				}
				o := s.entries[j].Pattern
				if !containsAll(o.Objects, p.Objects) || !containsTicks(o.Times, p.Times) {
					continue
				}
				if equalObjs(o.Objects, p.Objects) && equalTicks(o.Times, p.Times) {
					// Exact duplicate: keep only the earliest copy.
					if j < i {
						subsumed = true
						break
					}
					continue
				}
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, p)
		}
	}
	return out
}

func containsTicks(a, b []model.Tick) bool {
	i := 0
	for _, want := range b {
		for i < len(a) && a[i] < want {
			i++
		}
		if i >= len(a) || a[i] != want {
			return false
		}
	}
	return true
}

func equalObjs(a, b []model.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalTicks(a, b []model.Tick) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Prune evicts every pattern whose witness ends before the given tick and
// returns how many were removed. The detection pipeline calls it from the
// sink as the watermark advances, so an unbounded stream cannot grow the
// store without bound; sequence numbers of surviving patterns are
// preserved. Readers holding slices returned by earlier queries are
// unaffected (entries are copied on query).
func (s *Store) Prune(before model.Tick) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := s.entries[:0]
	for _, e := range s.entries {
		ts := e.Pattern.Times
		if len(ts) > 0 && ts[len(ts)-1] >= before {
			keep = append(keep, e)
		}
	}
	removed := len(s.entries) - len(keep)
	if removed == 0 {
		return 0
	}
	// Clear the evicted tail so pattern memory is actually released.
	for i := len(keep); i < len(s.entries); i++ {
		s.entries[i] = Entry{}
	}
	s.entries = keep
	// Rebuild the member index over the surviving entries.
	s.byObj = make(map[model.ObjectID][]int, len(s.byObj))
	for i, e := range s.entries {
		for _, o := range e.Pattern.Objects {
			s.byObj[o] = append(s.byObj[o], i)
		}
	}
	return removed
}

// Stats summarizes the stored patterns.
type Stats struct {
	Count int
	// SizeHist[k] counts patterns with k objects.
	SizeHist map[int]int
	// MeanDuration is the average witness length.
	MeanDuration float64
	// Span is the [min, max] tick range covered.
	SpanFrom, SpanTo model.Tick
}

// Summarize computes aggregate statistics.
func (s *Store) Summarize() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{SizeHist: make(map[int]int)}
	st.Count = len(s.entries)
	if st.Count == 0 {
		return st
	}
	st.SpanFrom = 1<<62 - 1
	total := 0
	for _, e := range s.entries {
		st.SizeHist[len(e.Pattern.Objects)]++
		total += len(e.Pattern.Times)
		ts := e.Pattern.Times
		if len(ts) > 0 {
			if ts[0] < st.SpanFrom {
				st.SpanFrom = ts[0]
			}
			if ts[len(ts)-1] > st.SpanTo {
				st.SpanTo = ts[len(ts)-1]
			}
		}
	}
	st.MeanDuration = float64(total) / float64(st.Count)
	return st
}

// TopGroups returns the n largest distinct object sets by (size, duration).
func (s *Store) TopGroups(n int) []model.Pattern {
	s.mu.RLock()
	defer s.mu.RUnlock()
	best := make(map[string]model.Pattern)
	for _, e := range s.entries {
		k := e.Pattern.Key()
		if cur, ok := best[k]; !ok || len(e.Pattern.Times) > len(cur.Times) {
			best[k] = e.Pattern
		}
	}
	out := make([]model.Pattern, 0, len(best))
	for _, p := range best {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Objects) != len(out[j].Objects) {
			return len(out[i].Objects) > len(out[j].Objects)
		}
		if len(out[i].Times) != len(out[j].Times) {
			return len(out[i].Times) > len(out[j].Times)
		}
		return out[i].Key() < out[j].Key()
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
