package patstore

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func pat(objs []model.ObjectID, ticks []model.Tick) model.Pattern {
	return model.Pattern{Objects: objs, Times: ticks}
}

func keys(ps []model.Pattern) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Key()
	}
	sort.Strings(out)
	return out
}

func TestAddAndBasicQueries(t *testing.T) {
	s := New()
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	s.Add(pat([]model.ObjectID{1, 2, 3}, []model.Tick{5, 6, 7}))
	s.Add(pat([]model.ObjectID{2, 4}, []model.Tick{10, 11}))
	s.Add(pat([]model.ObjectID{5, 6}, []model.Tick{1, 2}))
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.ByObject(2); len(got) != 2 {
		t.Errorf("ByObject(2) = %v", got)
	}
	if got := s.ByObject(9); len(got) != 0 {
		t.Errorf("ByObject(9) = %v", got)
	}
	if got := s.All(); len(got) != 3 {
		t.Errorf("All = %d", len(got))
	}
}

func TestOverlapping(t *testing.T) {
	s := New()
	s.Add(pat([]model.ObjectID{1, 2}, []model.Tick{5, 6, 7}))
	s.Add(pat([]model.ObjectID{3, 4}, []model.Tick{10, 12}))
	cases := []struct {
		from, to model.Tick
		want     int
	}{
		{1, 4, 0},
		{1, 5, 1},
		{7, 10, 2},
		{8, 9, 0}, // between the two spans
		{11, 11, 1},
		{13, 20, 0},
	}
	for _, c := range cases {
		if got := s.Overlapping(c.from, c.to); len(got) != c.want {
			t.Errorf("Overlapping(%d,%d) = %d, want %d", c.from, c.to, len(got), c.want)
		}
	}
}

func TestContaining(t *testing.T) {
	s := New()
	s.Add(pat([]model.ObjectID{1, 2, 3}, []model.Tick{1, 2}))
	s.Add(pat([]model.ObjectID{1, 3, 5}, []model.Tick{1, 2}))
	s.Add(pat([]model.ObjectID{2, 3}, []model.Tick{1, 2}))
	if got := s.Containing([]model.ObjectID{1, 3}); len(got) != 2 {
		t.Errorf("Containing(1,3) = %v", got)
	}
	if got := s.Containing([]model.ObjectID{3}); len(got) != 3 {
		t.Errorf("Containing(3) = %v", got)
	}
	if got := s.Containing([]model.ObjectID{1, 2, 3, 4}); len(got) != 0 {
		t.Errorf("Containing(1..4) = %v", got)
	}
	if got := s.Containing(nil); len(got) != 3 {
		t.Errorf("Containing(nil) = %v", got)
	}
}

func TestMaximal(t *testing.T) {
	s := New()
	s.Add(pat([]model.ObjectID{1, 2}, []model.Tick{1, 2, 3}))    // subsumed by next
	s.Add(pat([]model.ObjectID{1, 2, 3}, []model.Tick{1, 2, 3})) // maximal
	s.Add(pat([]model.ObjectID{1, 2}, []model.Tick{1, 2, 3, 4})) // maximal (more ticks)
	s.Add(pat([]model.ObjectID{7, 8}, []model.Tick{5, 6}))       // maximal (disjoint)
	s.Add(pat([]model.ObjectID{7, 8}, []model.Tick{5, 6}))       // duplicate: dropped
	got := keys(s.Maximal())
	want := []string{"1,2", "1,2,3", "7,8"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Maximal = %v, want %v", got, want)
	}
}

// Property: Maximal output contains no pair where one pattern subsumes the
// other, and every dropped pattern is subsumed by some kept one.
func TestMaximalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var all []model.Pattern
		for i := 0; i < 30; i++ {
			n := 2 + rng.Intn(4)
			objs := make([]model.ObjectID, 0, n)
			for o := model.ObjectID(1); o <= 6 && len(objs) < n; o++ {
				if rng.Intn(2) == 0 {
					objs = append(objs, o)
				}
			}
			if len(objs) < 2 {
				objs = []model.ObjectID{1, 2}
			}
			var ticks []model.Tick
			for tk := model.Tick(1); tk <= 8; tk++ {
				if rng.Intn(2) == 0 {
					ticks = append(ticks, tk)
				}
			}
			if len(ticks) == 0 {
				ticks = []model.Tick{1}
			}
			p := pat(objs, ticks)
			s.Add(p)
			all = append(all, p)
		}
		max := s.Maximal()
		sub := func(a, b model.Pattern) bool { // a subsumes b
			return containsAll(a.Objects, b.Objects) && containsTicks(a.Times, b.Times)
		}
		for i := range max {
			for j := range max {
				if i != j && sub(max[i], max[j]) && sub(max[j], max[i]) {
					// identical duplicates must not both survive
					return false
				}
				if i != j && sub(max[i], max[j]) && !sub(max[j], max[i]) {
					return false
				}
			}
		}
		// Every input is subsumed by (or equal to) some maximal entry.
		for _, p := range all {
			ok := false
			for _, m := range max {
				if sub(m, p) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := New()
	if st := s.Summarize(); st.Count != 0 {
		t.Errorf("empty stats: %+v", st)
	}
	s.Add(pat([]model.ObjectID{1, 2}, []model.Tick{3, 4}))
	s.Add(pat([]model.ObjectID{1, 2, 3}, []model.Tick{8, 9, 10, 11}))
	st := s.Summarize()
	if st.Count != 2 || st.SizeHist[2] != 1 || st.SizeHist[3] != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.MeanDuration != 3 {
		t.Errorf("mean duration = %v", st.MeanDuration)
	}
	if st.SpanFrom != 3 || st.SpanTo != 11 {
		t.Errorf("span = [%d,%d]", st.SpanFrom, st.SpanTo)
	}
}

func TestTopGroups(t *testing.T) {
	s := New()
	s.Add(pat([]model.ObjectID{1, 2}, []model.Tick{1, 2}))
	s.Add(pat([]model.ObjectID{1, 2}, []model.Tick{5, 6, 7})) // longer witness, same group
	s.Add(pat([]model.ObjectID{3, 4, 5}, []model.Tick{1, 2}))
	top := s.TopGroups(2)
	if len(top) != 2 {
		t.Fatalf("TopGroups = %v", top)
	}
	if top[0].Key() != "3,4,5" {
		t.Errorf("top[0] = %v, want largest group first", top[0])
	}
	if top[1].Key() != "1,2" || len(top[1].Times) != 3 {
		t.Errorf("top[1] = %v, want longest witness for group 1,2", top[1])
	}
}

func TestConcurrentReadersOneWriter(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s.Add(pat([]model.ObjectID{model.ObjectID(i%7 + 1), model.ObjectID(i%7 + 2)},
				[]model.Tick{model.Tick(i), model.Tick(i + 1)}))
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.ByObject(3)
				s.Overlapping(10, 20)
				s.Len()
			}
		}()
	}
	wg.Wait()
	if s.Len() != 500 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestPrune(t *testing.T) {
	s := New()
	s.Add(pat([]model.ObjectID{1, 2}, []model.Tick{1, 2, 3}))
	s.Add(pat([]model.ObjectID{2, 3}, []model.Tick{5, 6, 7}))
	s.Add(pat([]model.ObjectID{1, 3}, []model.Tick{9, 10}))

	if n := s.Prune(1); n != 0 {
		t.Fatalf("Prune(1) removed %d, want 0", n)
	}
	if n := s.Prune(4); n != 1 {
		t.Fatalf("Prune(4) removed %d, want 1", n)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after prune, want 2", s.Len())
	}
	// The member index is rebuilt: object 1 now only maps to the survivor.
	got := s.ByObject(1)
	if len(got) != 1 || got[0].Times[0] != 9 {
		t.Fatalf("ByObject(1) after prune = %v", got)
	}
	if got := s.ByObject(2); len(got) != 1 || got[0].Times[0] != 5 {
		t.Fatalf("ByObject(2) after prune = %v", got)
	}
	// Containing still works against the rebuilt index.
	if got := s.Containing([]model.ObjectID{2, 3}); len(got) != 1 {
		t.Fatalf("Containing({2,3}) after prune = %v", got)
	}
	// Boundary: a pattern ending exactly at the prune tick survives.
	if n := s.Prune(7); n != 0 {
		t.Fatalf("Prune(7) removed %d, want 0 (inclusive boundary)", n)
	}
	if n := s.Prune(8); n != 1 {
		t.Fatalf("Prune(8) removed %d, want 1", n)
	}
	// Everything can go; the store stays usable.
	s.Prune(1 << 40)
	if s.Len() != 0 {
		t.Fatalf("Len = %d after full prune", s.Len())
	}
	s.Add(pat([]model.ObjectID{4, 5}, []model.Tick{20, 21}))
	if got := s.ByObject(4); len(got) != 1 {
		t.Fatalf("store unusable after full prune: %v", got)
	}
}
