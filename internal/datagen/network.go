// Package datagen generates the trajectory workloads of the paper's
// evaluation (Table 2). The real datasets are unavailable (Taxi is
// proprietary; GeoLife is external; Brinkhoff is a Java tool), so each is
// replaced by a synthetic generator reproducing the statistics the
// algorithms are sensitive to: spatial density, cluster-size distribution,
// sampling cadence, and co-movement structure. See DESIGN.md for the
// substitution rationale.
//
// All generators are deterministic for a given seed.
package datagen

import (
	"container/heap"
	"math/rand"

	"repro/internal/geo"
)

// RoadClass categorizes network edges, Brinkhoff-style.
type RoadClass int

const (
	// Local streets: slow, dense.
	Local RoadClass = iota
	// Arterial roads: medium speed.
	Arterial
	// Highways: fast, sparse.
	Highway
)

// Speed returns the class's design speed in distance units per tick.
func (c RoadClass) Speed() float64 {
	switch c {
	case Highway:
		return 30
	case Arterial:
		return 15
	default:
		return 7
	}
}

// Edge is one directed road segment.
type Edge struct {
	To    int32
	Dist  float64
	Class RoadClass
}

// Network is a synthetic road network: a perturbed grid with arterial rows
// and highway columns, mimicking the structure of the urban networks the
// Brinkhoff generator runs on.
type Network struct {
	Nodes []geo.Point
	Adj   [][]Edge
}

// GenNetwork builds a rows x cols grid network with the given spacing.
// Node positions are jittered; every rowStride-th row is arterial and
// every colStride-th column a highway.
func GenNetwork(rng *rand.Rand, rows, cols int, spacing float64) *Network {
	if rows < 2 || cols < 2 {
		panic("datagen: network needs at least a 2x2 grid")
	}
	n := &Network{
		Nodes: make([]geo.Point, rows*cols),
		Adj:   make([][]Edge, rows*cols),
	}
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			jx := (rng.Float64() - 0.5) * spacing * 0.3
			jy := (rng.Float64() - 0.5) * spacing * 0.3
			n.Nodes[id(r, c)] = geo.Point{
				X: float64(c)*spacing + jx,
				Y: float64(r)*spacing + jy,
			}
		}
	}
	classOf := func(r, c, r2, c2 int) RoadClass {
		if c == c2 && c%5 == 0 {
			return Highway
		}
		if r == r2 && r%3 == 0 {
			return Arterial
		}
		return Local
	}
	link := func(a, b int32, cl RoadClass) {
		d := n.Nodes[a].Dist(n.Nodes[b], geo.L2)
		n.Adj[a] = append(n.Adj[a], Edge{To: b, Dist: d, Class: cl})
		n.Adj[b] = append(n.Adj[b], Edge{To: a, Dist: d, Class: cl})
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				link(id(r, c), id(r, c+1), classOf(r, c, r, c+1))
			}
			if r+1 < rows {
				link(id(r, c), id(r+1, c), classOf(r, c, r+1, c))
			}
		}
	}
	return n
}

// Extent returns the bounding rectangle of the network.
func (n *Network) Extent() geo.Rect {
	r := geo.EmptyRect()
	for _, p := range n.Nodes {
		r = r.UnionPoint(p)
	}
	return r
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node int32
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// ShortestPath returns the travel-time-optimal node sequence from src to
// dst (inclusive), or nil if unreachable. Edge cost is Dist/Speed.
func (n *Network) ShortestPath(src, dst int32) []int32 {
	if src == dst {
		return []int32{src}
	}
	const inf = 1e18
	dist := make([]float64, len(n.Nodes))
	prev := make([]int32, len(n.Nodes))
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.node == dst {
			break
		}
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range n.Adj[it.node] {
			nd := it.dist + e.Dist/e.Class.Speed()
			if nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = it.node
				heap.Push(q, pqItem{node: e.To, dist: nd})
			}
		}
	}
	if prev[dst] == -1 {
		return nil
	}
	var path []int32
	for at := dst; at != -1; at = prev[at] {
		path = append(path, at)
		if at == src {
			break
		}
	}
	// Reverse.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// EdgeBetween returns the edge from a to b, if any.
func (n *Network) EdgeBetween(a, b int32) (Edge, bool) {
	for _, e := range n.Adj[a] {
		if e.To == b {
			return e, true
		}
	}
	return Edge{}, false
}
