package datagen

import (
	"math/rand"

	"repro/internal/geo"
	"repro/internal/model"
)

// Simulator produces one snapshot per call, advancing its internal state by
// one tick. Implementations are deterministic for a fixed seed.
type Simulator interface {
	// Name labels the workload ("brinkhoff", "geolife", "taxi", "planted").
	Name() string
	// Objects returns the number of moving objects.
	Objects() int
	// Extent returns the bounding region of all generated locations.
	Extent() geo.Rect
	// Next returns the snapshot for the next tick.
	Next() *model.Snapshot
}

// Snapshots runs a simulator for n ticks.
func Snapshots(s Simulator, n int) []*model.Snapshot {
	out := make([]*model.Snapshot, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Records converts snapshots into a stamped-record stream with correct
// last-time chains, ordered by tick (the shape a pipeline source emits).
func Records(snaps []*model.Snapshot) []model.StampedRecord {
	last := make(map[model.ObjectID]model.Tick)
	var out []model.StampedRecord
	for _, s := range snaps {
		for i, id := range s.Objects {
			lt, ok := last[id]
			if !ok {
				lt = model.NoLastTime
			}
			out = append(out, model.StampedRecord{
				Object:   id,
				Loc:      s.Locs[i],
				Tick:     s.Tick,
				LastTick: lt,
			})
			last[id] = s.Tick
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Brinkhoff-style network-based moving objects.

// BrinkhoffConfig parameterizes the network simulator.
type BrinkhoffConfig struct {
	Seed       int64
	NumObjects int
	// Rows/Cols/Spacing define the synthetic road network.
	Rows, Cols int
	Spacing    float64
	// DropRate is the probability an object skips reporting one tick.
	DropRate float64
	// PlatoonFraction of objects travel in platoons (buses, convoys,
	// car-following traffic): members share a route and progress, offset
	// by at most PlatoonOffset. This reproduces the co-movement density
	// the paper's road-network workload exhibits.
	PlatoonFraction float64
	// PlatoonMin/PlatoonMax bound the platoon sizes.
	PlatoonMin, PlatoonMax int
	// PlatoonOffset is the maximal member offset from the platoon leader.
	PlatoonOffset float64
	// Churn: members detach from their platoon (drift beyond clustering
	// range) and reattach, so co-movement intervals are finite — the
	// composition turnover real traffic exhibits. DetachRate is the
	// per-tick probability of leaving temporarily; DetachLen the mean
	// absence.
	DetachRate float64
	DetachLen  int
	// LeaveRate is the per-tick probability that a member leaves its
	// platoon permanently and continues as an independent traveler.
	// Permanent turnover keeps higher-order co-movement subsets sparse,
	// as in real traffic.
	LeaveRate float64
}

// DefaultBrinkhoff mirrors the paper's Brinkhoff workload shape at a
// configurable scale (1s sampling on a road network).
func DefaultBrinkhoff(seed int64, objects int) BrinkhoffConfig {
	return BrinkhoffConfig{
		Seed:            seed,
		NumObjects:      objects,
		Rows:            24,
		Cols:            24,
		Spacing:         60,
		DropRate:        0.02,
		PlatoonFraction: 0.7,
		PlatoonMin:      4,
		PlatoonMax:      18,
		PlatoonOffset:   0.25,
		DetachRate:      1.0 / 60,
		DetachLen:       10,
		LeaveRate:       1.0 / 90,
	}
}

// brinkhoffObj is one network-constrained mover.
type brinkhoffObj struct {
	path    []int32 // remaining node sequence, path[0] = current segment start
	segPos  float64 // distance traveled along the current segment
	loc     geo.Point
	resting int // ticks to wait before the next trip
	// leader >= 0 marks a platoon member deriving its position from the
	// leader object plus a fixed offset.
	leader int
	offset geo.Point
	// detached > 0: the member has drifted away from the platoon for this
	// many more ticks (positioned far off the leader).
	detached int
}

// Brinkhoff simulates network-based moving objects: each object routes
// between random nodes via shortest paths and moves at road-class speed
// with per-tick noise, re-routing after arrival.
type Brinkhoff struct {
	cfg  BrinkhoffConfig
	rng  *rand.Rand
	net  *Network
	objs []brinkhoffObj
	tick model.Tick
}

// NewBrinkhoff builds the simulator.
func NewBrinkhoff(cfg BrinkhoffConfig) *Brinkhoff {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := &Brinkhoff{
		cfg:  cfg,
		rng:  rng,
		net:  GenNetwork(rng, cfg.Rows, cfg.Cols, cfg.Spacing),
		objs: make([]brinkhoffObj, cfg.NumObjects),
		tick: 1,
	}
	i := 0
	for i < len(b.objs) {
		start := int32(rng.Intn(len(b.net.Nodes)))
		b.objs[i] = brinkhoffObj{
			loc:    b.net.Nodes[start],
			path:   b.newRoute(start),
			leader: -1,
		}
		leader := i
		i++
		if cfg.PlatoonFraction > 0 && rng.Float64() < cfg.PlatoonFraction {
			size := cfg.PlatoonMin
			if cfg.PlatoonMax > cfg.PlatoonMin {
				size += rng.Intn(cfg.PlatoonMax - cfg.PlatoonMin + 1)
			}
			for m := 1; m < size && i < len(b.objs); m++ {
				off := geo.Point{
					X: (rng.Float64() - 0.5) * 2 * cfg.PlatoonOffset,
					Y: (rng.Float64() - 0.5) * 2 * cfg.PlatoonOffset,
				}
				b.objs[i] = brinkhoffObj{
					loc:    b.objs[leader].loc,
					leader: leader,
					offset: off,
				}
				i++
			}
		}
	}
	return b
}

// newRoute picks a random reachable destination and routes to it.
func (b *Brinkhoff) newRoute(from int32) []int32 {
	for attempt := 0; attempt < 8; attempt++ {
		to := int32(b.rng.Intn(len(b.net.Nodes)))
		if to == from {
			continue
		}
		if p := b.net.ShortestPath(from, to); len(p) >= 2 {
			return p
		}
	}
	return []int32{from}
}

// Name implements Simulator.
func (b *Brinkhoff) Name() string { return "brinkhoff" }

// Objects implements Simulator.
func (b *Brinkhoff) Objects() int { return b.cfg.NumObjects }

// Extent implements Simulator.
func (b *Brinkhoff) Extent() geo.Rect { return b.net.Extent() }

// Next implements Simulator.
func (b *Brinkhoff) Next() *model.Snapshot {
	s := &model.Snapshot{Tick: b.tick}
	b.tick++
	for i := range b.objs {
		o := &b.objs[i]
		if o.leader >= 0 {
			l := &b.objs[o.leader]
			if b.cfg.LeaveRate > 0 && b.rng.Float64() < b.cfg.LeaveRate {
				// Permanent departure: continue independently from the
				// platoon's current road segment.
				o.leader = -1
				o.path = b.newRoute(l.path[0])
				o.segPos = 0
				o.loc = l.loc
				b.step(o)
			} else {
				switch {
				case o.detached > 0:
					o.detached--
					// Trailing the platoon well outside clustering range.
					drift := b.cfg.PlatoonOffset*40 + float64(o.detached)*2
					o.loc = geo.Point{X: l.loc.X + drift, Y: l.loc.Y + drift}
				default:
					if b.cfg.DetachRate > 0 && b.rng.Float64() < b.cfg.DetachRate {
						o.detached = 1 + b.rng.Intn(2*b.cfg.DetachLen)
					}
					o.loc = geo.Point{X: l.loc.X + o.offset.X, Y: l.loc.Y + o.offset.Y}
				}
			}
		} else {
			b.step(o)
		}
		if b.rng.Float64() < b.cfg.DropRate {
			continue
		}
		s.Add(model.ObjectID(i+1), o.loc)
	}
	return s
}

// step advances one object by one tick of travel.
func (b *Brinkhoff) step(o *brinkhoffObj) {
	if o.resting > 0 {
		o.resting--
		return
	}
	if len(o.path) < 2 {
		// Arrived: rest briefly, then take a new trip.
		o.resting = b.rng.Intn(5)
		from := o.path[0]
		o.path = b.newRoute(from)
		o.segPos = 0
		return
	}
	edge, ok := b.net.EdgeBetween(o.path[0], o.path[1])
	if !ok {
		o.path = o.path[1:]
		return
	}
	speed := edge.Class.Speed() * (0.8 + 0.4*b.rng.Float64())
	o.segPos += speed
	for o.segPos >= edge.Dist {
		o.segPos -= edge.Dist
		o.path = o.path[1:]
		if len(o.path) < 2 {
			o.loc = b.net.Nodes[o.path[0]]
			return
		}
		edge, ok = b.net.EdgeBetween(o.path[0], o.path[1])
		if !ok {
			return
		}
	}
	a := b.net.Nodes[o.path[0]]
	c := b.net.Nodes[o.path[1]]
	f := o.segPos / edge.Dist
	o.loc = geo.Point{X: a.X + (c.X-a.X)*f, Y: a.Y + (c.Y-a.Y)*f}
}

// ---------------------------------------------------------------------------
// Hub-based free-space movement (GeoLife-like and Taxi-like).

// HubConfig parameterizes hub-to-hub movement in free space.
type HubConfig struct {
	Seed       int64
	NumObjects int
	// NumHubs POIs/hotspots are scattered over Extent x Extent space.
	NumHubs int
	Extent  float64
	// HubRadius is the spread of positions around a hub while dwelling.
	HubRadius float64
	// Speeds are the movement modes (distance/tick); each trip picks one.
	Speeds []float64
	// DwellMax is the maximum dwell time at a hub in ticks.
	DwellMax int
	// DropRate is the probability an object skips reporting one tick.
	DropRate float64
	// name distinguishes the GeoLife-like and Taxi-like presets.
	name string
}

// DefaultGeoLife approximates the GeoLife dataset shape: multi-modal
// movement (walk/bike/vehicle) between many POIs with long dwells.
// Geometry is calibrated to Table 3's percentage-based eps: at the default
// eps = 0.06% of the extent (1.2 units here), co-dwellers at one POI
// cluster while travelers do not.
func DefaultGeoLife(seed int64, objects int) HubConfig {
	return HubConfig{
		Seed:       seed,
		NumObjects: objects,
		NumHubs:    40,
		Extent:     2000,
		HubRadius:  1.2,
		Speeds:     []float64{14, 28, 45},
		DwellMax:   50,
		DropRate:   0.05,
		name:       "geolife",
	}
}

// DefaultTaxi approximates the proprietary Taxi dataset shape: vehicles
// shuttling between a smaller set of hotspots, with denser hotspot
// occupancy (larger clusters than GeoLife, as in the paper's Figures
// 12-13).
func DefaultTaxi(seed int64, objects int) HubConfig {
	return HubConfig{
		Seed:       seed,
		NumObjects: objects,
		NumHubs:    16,
		Extent:     2000,
		HubRadius:  1.6,
		Speeds:     []float64{40, 60},
		DwellMax:   20,
		DropRate:   0.03,
		name:       "taxi",
	}
}

// hubObj is one hub-to-hub traveler.
type hubObj struct {
	loc    geo.Point
	target geo.Point
	center geo.Point // hub center while dwelling
	speed  float64
	dwell  int
}

// Hub simulates free-space movement between hub locations.
type Hub struct {
	cfg  HubConfig
	rng  *rand.Rand
	hubs []geo.Point
	objs []hubObj
	tick model.Tick
}

// NewHub builds the simulator.
func NewHub(cfg HubConfig) *Hub {
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := &Hub{cfg: cfg, rng: rng, tick: 1}
	h.hubs = make([]geo.Point, cfg.NumHubs)
	for i := range h.hubs {
		h.hubs[i] = geo.Point{
			X: rng.Float64() * cfg.Extent,
			Y: rng.Float64() * cfg.Extent,
		}
	}
	h.objs = make([]hubObj, cfg.NumObjects)
	for i := range h.objs {
		hub := h.hubs[rng.Intn(len(h.hubs))]
		h.objs[i].loc = h.nearHub(hub)
		h.retarget(&h.objs[i])
	}
	return h
}

// nearHub samples a position in the hub's dwell radius.
func (h *Hub) nearHub(hub geo.Point) geo.Point {
	return geo.Point{
		X: hub.X + (h.rng.Float64()-0.5)*2*h.cfg.HubRadius,
		Y: hub.Y + (h.rng.Float64()-0.5)*2*h.cfg.HubRadius,
	}
}

// retarget starts a new trip for the object.
func (h *Hub) retarget(o *hubObj) {
	hub := h.hubs[h.rng.Intn(len(h.hubs))]
	o.center = hub
	o.target = h.nearHub(hub)
	o.speed = h.cfg.Speeds[h.rng.Intn(len(h.cfg.Speeds))] * (0.8 + 0.4*h.rng.Float64())
	o.dwell = 0
}

// Name implements Simulator.
func (h *Hub) Name() string { return h.cfg.name }

// Objects implements Simulator.
func (h *Hub) Objects() int { return h.cfg.NumObjects }

// Extent implements Simulator.
func (h *Hub) Extent() geo.Rect {
	return geo.Rect{MinX: 0, MinY: 0, MaxX: h.cfg.Extent, MaxY: h.cfg.Extent}
}

// Next implements Simulator.
func (h *Hub) Next() *model.Snapshot {
	s := &model.Snapshot{Tick: h.tick}
	h.tick++
	for i := range h.objs {
		o := &h.objs[i]
		h.step(o)
		if h.rng.Float64() < h.cfg.DropRate {
			continue
		}
		s.Add(model.ObjectID(i+1), o.loc)
	}
	return s
}

func (h *Hub) step(o *hubObj) {
	if o.dwell > 0 {
		o.dwell--
		// Dwellers hover inside the hub radius (no unbounded drift).
		o.loc = h.nearHub(o.center)
		if o.dwell == 0 {
			h.retarget(o)
		}
		return
	}
	dx := o.target.X - o.loc.X
	dy := o.target.Y - o.loc.Y
	d := geo.Point{}.Dist(geo.Point{X: dx, Y: dy}, geo.L2)
	if d <= o.speed {
		o.loc = o.target
		o.dwell = 1 + h.rng.Intn(h.cfg.DwellMax)
		return
	}
	o.loc.X += dx / d * o.speed
	o.loc.Y += dy / d * o.speed
}
