package datagen

import (
	"math/rand"

	"repro/internal/geo"
	"repro/internal/model"
)

// PlantedConfig parameterizes a workload with known co-movement structure:
// groups of objects that travel together in episodes (runs of co-movement
// separated by scatter gaps), over a background of independently wandering
// noise objects. It drives the enumeration benchmarks (Figure 15), where
// average cluster size and episode temporal structure must be controlled,
// and the end-to-end recovery tests.
type PlantedConfig struct {
	Seed int64
	// NumGroups groups of GroupSize objects each co-move.
	NumGroups int
	GroupSize int
	// NumNoise independent objects wander the same space.
	NumNoise int
	// Extent is the square world size.
	Extent float64
	// Eps is the clustering radius the workload targets: co-moving members
	// stay within Eps/3 of their group centroid, scattered members at
	// least 3*Eps apart from the centroid.
	Eps float64
	// RunLen is the nominal length of one co-movement run (ticks); actual
	// runs vary by +-25%.
	RunLen int
	// GapLen is the nominal scatter gap between runs; 0 disables gaps.
	GapLen int
	// Speed is the group centroid speed per tick.
	Speed float64
}

// DefaultPlanted is a modest planted workload for tests.
func DefaultPlanted(seed int64) PlantedConfig {
	return PlantedConfig{
		Seed:      seed,
		NumGroups: 4,
		GroupSize: 6,
		NumNoise:  40,
		Extent:    2000,
		Eps:       10,
		RunLen:    30,
		GapLen:    4,
		Speed:     8,
	}
}

// plantedGroup is one co-moving group's state.
type plantedGroup struct {
	centroid geo.Point
	heading  geo.Point // unit direction
	// inRun: members hug the centroid; otherwise they scatter.
	inRun     bool
	remaining int // ticks left in the current phase
	offsets   []geo.Point
}

// Planted generates the planted-pattern workload.
type Planted struct {
	cfg    PlantedConfig
	rng    *rand.Rand
	groups []plantedGroup
	noise  []geo.Point
	tick   model.Tick
}

// NewPlanted builds the generator.
func NewPlanted(cfg PlantedConfig) *Planted {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Planted{cfg: cfg, rng: rng, tick: 1}
	p.groups = make([]plantedGroup, cfg.NumGroups)
	for g := range p.groups {
		gr := &p.groups[g]
		gr.centroid = geo.Point{
			X: rng.Float64() * cfg.Extent,
			Y: rng.Float64() * cfg.Extent,
		}
		gr.heading = p.randHeading()
		gr.inRun = true
		gr.remaining = p.phaseLen(cfg.RunLen)
		gr.offsets = make([]geo.Point, cfg.GroupSize)
		p.scatterOffsets(gr)
	}
	p.noise = make([]geo.Point, cfg.NumNoise)
	for i := range p.noise {
		p.noise[i] = geo.Point{
			X: rng.Float64() * cfg.Extent,
			Y: rng.Float64() * cfg.Extent,
		}
	}
	return p
}

func (p *Planted) randHeading() geo.Point {
	for {
		x := p.rng.Float64()*2 - 1
		y := p.rng.Float64()*2 - 1
		d := geo.Point{}.Dist(geo.Point{X: x, Y: y}, geo.L2)
		if d > 0.1 && d <= 1 {
			return geo.Point{X: x / d, Y: y / d}
		}
	}
}

func (p *Planted) phaseLen(nominal int) int {
	if nominal <= 1 {
		return 1
	}
	span := nominal / 2
	if span < 1 {
		span = 1
	}
	return nominal - span/2 + p.rng.Intn(span+1)
}

// scatterOffsets assigns member offsets for the group's current phase.
func (p *Planted) scatterOffsets(gr *plantedGroup) {
	for i := range gr.offsets {
		if gr.inRun {
			// Tight: within Eps/3 of the centroid so any pair is within
			// 2*Eps/3 < Eps under every metric.
			r := p.cfg.Eps / 3
			gr.offsets[i] = geo.Point{
				X: (p.rng.Float64() - 0.5) * r,
				Y: (p.rng.Float64() - 0.5) * r,
			}
		} else {
			// Scattered: at least 3*Eps from the centroid, spread apart.
			ang := p.randHeading()
			d := 3*p.cfg.Eps + float64(i)*2.5*p.cfg.Eps
			gr.offsets[i] = geo.Point{X: ang.X * d, Y: ang.Y * d}
		}
	}
}

// GroupMembers returns the object ids of group g (0-based). Groups own the
// lowest ids: group g holds ids [g*GroupSize+1, (g+1)*GroupSize].
func (p *Planted) GroupMembers(g int) []model.ObjectID {
	out := make([]model.ObjectID, p.cfg.GroupSize)
	for i := range out {
		out[i] = model.ObjectID(g*p.cfg.GroupSize + i + 1)
	}
	return out
}

// Name implements Simulator.
func (p *Planted) Name() string { return "planted" }

// Objects implements Simulator.
func (p *Planted) Objects() int {
	return p.cfg.NumGroups*p.cfg.GroupSize + p.cfg.NumNoise
}

// Extent implements Simulator.
func (p *Planted) Extent() geo.Rect {
	return geo.Rect{MinX: 0, MinY: 0, MaxX: p.cfg.Extent, MaxY: p.cfg.Extent}
}

// Next implements Simulator.
func (p *Planted) Next() *model.Snapshot {
	s := &model.Snapshot{Tick: p.tick}
	p.tick++
	id := model.ObjectID(1)
	for g := range p.groups {
		gr := &p.groups[g]
		p.advanceGroup(gr)
		for _, off := range gr.offsets {
			s.Add(id, geo.Point{X: gr.centroid.X + off.X, Y: gr.centroid.Y + off.Y})
			id++
		}
	}
	for i := range p.noise {
		p.noise[i].X += (p.rng.Float64() - 0.5) * 2 * p.cfg.Speed
		p.noise[i].Y += (p.rng.Float64() - 0.5) * 2 * p.cfg.Speed
		p.noise[i] = p.wrap(p.noise[i])
		s.Add(id, p.noise[i])
		id++
	}
	return s
}

func (p *Planted) advanceGroup(gr *plantedGroup) {
	gr.remaining--
	if gr.remaining <= 0 {
		if p.cfg.GapLen > 0 {
			gr.inRun = !gr.inRun
		}
		if gr.inRun {
			gr.remaining = p.phaseLen(p.cfg.RunLen)
		} else {
			gr.remaining = p.phaseLen(p.cfg.GapLen)
		}
		p.scatterOffsets(gr)
	}
	// Move the centroid; bounce at the borders.
	gr.centroid.X += gr.heading.X * p.cfg.Speed
	gr.centroid.Y += gr.heading.Y * p.cfg.Speed
	if gr.centroid.X < 0 || gr.centroid.X > p.cfg.Extent ||
		gr.centroid.Y < 0 || gr.centroid.Y > p.cfg.Extent {
		gr.heading.X, gr.heading.Y = -gr.heading.X, -gr.heading.Y
		gr.centroid = p.wrap(gr.centroid)
	}
	if p.rng.Intn(20) == 0 {
		gr.heading = p.randHeading()
	}
}

func (p *Planted) wrap(pt geo.Point) geo.Point {
	if pt.X < 0 {
		pt.X = 0
	}
	if pt.X > p.cfg.Extent {
		pt.X = p.cfg.Extent
	}
	if pt.Y < 0 {
		pt.Y = 0
	}
	if pt.Y > p.cfg.Extent {
		pt.Y = p.cfg.Extent
	}
	return pt
}

// SubsampleObjects keeps only the first ratio (0..1] share of objects in
// each snapshot — the Or knob of Figure 12.
func SubsampleObjects(snaps []*model.Snapshot, total int, ratio float64) []*model.Snapshot {
	keep := model.ObjectID(float64(total) * ratio)
	if keep < 1 {
		keep = 1
	}
	out := make([]*model.Snapshot, len(snaps))
	for i, s := range snaps {
		ns := &model.Snapshot{Tick: s.Tick, Ingest: s.Ingest}
		for j, id := range s.Objects {
			if id <= keep {
				ns.Add(id, s.Locs[j])
			}
		}
		out[i] = ns
	}
	return out
}
