package datagen

import (
	"math/rand"

	"repro/internal/geo"
	"repro/internal/model"
)

// ChurnConfig parameterizes a workload whose per-tick change rate is an
// explicit knob: each tick exactly MoveFraction of the objects take a
// random-walk step of magnitude StepSize while the rest hold position, and
// DropRate of the population skips reporting (so objects vanish from and
// re-enter the stream). It is the control workload for the incremental
// execution mode, whose per-tick cost is proportional to churn: at
// MoveFraction 0 every snapshot repeats the previous positions, at 1 the
// whole population moves every tick.
type ChurnConfig struct {
	Seed       int64
	NumObjects int
	// Extent is the square world size.
	Extent float64
	// NumHubs hotspots cluster the initial placement so the workload has
	// the co-location density real trajectories exhibit (pairs within eps
	// exist and persist); 0 scatters objects uniformly.
	NumHubs int
	// HubRadius is the placement spread around a hub.
	HubRadius float64
	// MoveFraction in [0,1] is the share of objects that move each tick.
	// The moving set is re-drawn per tick, so over time every object
	// wanders.
	MoveFraction float64
	// StepSize is the random-walk step magnitude per moving object.
	StepSize float64
	// DropRate is the probability an object skips reporting one tick
	// (membership churn: it leaves the stream and re-enters later).
	DropRate float64
}

// DefaultChurn is a hub-clustered churn workload: objects dwell around
// hotspots and a tunable fraction drifts each tick.
func DefaultChurn(seed int64, objects int, moveFraction, stepSize float64) ChurnConfig {
	// Hub count scales with the population so density per hub — and with
	// it the clustering workload — is the same at every benchmark scale.
	hubs := objects / 60
	if hubs < 2 {
		hubs = 2
	}
	return ChurnConfig{
		Seed:         seed,
		NumObjects:   objects,
		Extent:       2000,
		NumHubs:      hubs,
		HubRadius:    2,
		MoveFraction: moveFraction,
		StepSize:     stepSize,
		// A dropped object re-derives its whole neighbourhood on
		// re-entry, so membership churn is far more expensive than
		// movement churn; keep it a trickle so MoveFraction stays the
		// dominant knob.
		DropRate: 0.005,
	}
}

// Churn simulates the fixed-churn random-walk workload.
type Churn struct {
	cfg  ChurnConfig
	rng  *rand.Rand
	locs []geo.Point
	perm []int // scratch for the per-tick mover draw
	tick model.Tick
}

// NewChurn builds the simulator.
func NewChurn(cfg ChurnConfig) *Churn {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Churn{cfg: cfg, rng: rng, tick: 1}
	c.locs = make([]geo.Point, cfg.NumObjects)
	c.perm = make([]int, cfg.NumObjects)
	hubs := make([]geo.Point, cfg.NumHubs)
	for i := range hubs {
		hubs[i] = geo.Point{
			X: rng.Float64() * cfg.Extent,
			Y: rng.Float64() * cfg.Extent,
		}
	}
	for i := range c.locs {
		if len(hubs) > 0 {
			h := hubs[rng.Intn(len(hubs))]
			c.locs[i] = geo.Point{
				X: h.X + (rng.Float64()-0.5)*2*cfg.HubRadius,
				Y: h.Y + (rng.Float64()-0.5)*2*cfg.HubRadius,
			}
		} else {
			c.locs[i] = geo.Point{
				X: rng.Float64() * cfg.Extent,
				Y: rng.Float64() * cfg.Extent,
			}
		}
		c.perm[i] = i
	}
	return c
}

// Name implements Simulator.
func (c *Churn) Name() string { return "churn" }

// Objects implements Simulator.
func (c *Churn) Objects() int { return c.cfg.NumObjects }

// Extent implements Simulator.
func (c *Churn) Extent() geo.Rect {
	return geo.Rect{MinX: 0, MinY: 0, MaxX: c.cfg.Extent, MaxY: c.cfg.Extent}
}

// Next implements Simulator.
func (c *Churn) Next() *model.Snapshot {
	s := &model.Snapshot{Tick: c.tick}
	c.tick++
	// Draw exactly round(MoveFraction * n) movers via a partial shuffle.
	movers := int(c.cfg.MoveFraction*float64(len(c.locs)) + 0.5)
	if movers > len(c.locs) {
		movers = len(c.locs)
	}
	for i := 0; i < movers; i++ {
		j := i + c.rng.Intn(len(c.perm)-i)
		c.perm[i], c.perm[j] = c.perm[j], c.perm[i]
		o := c.perm[i]
		c.locs[o].X += (c.rng.Float64() - 0.5) * 2 * c.cfg.StepSize
		c.locs[o].Y += (c.rng.Float64() - 0.5) * 2 * c.cfg.StepSize
		c.locs[o] = c.clamp(c.locs[o])
	}
	for i, loc := range c.locs {
		if c.cfg.DropRate > 0 && c.rng.Float64() < c.cfg.DropRate {
			continue
		}
		s.Add(model.ObjectID(i+1), loc)
	}
	return s
}

func (c *Churn) clamp(pt geo.Point) geo.Point {
	if pt.X < 0 {
		pt.X = 0
	}
	if pt.X > c.cfg.Extent {
		pt.X = c.cfg.Extent
	}
	if pt.Y < 0 {
		pt.Y = 0
	}
	if pt.Y > c.cfg.Extent {
		pt.Y = c.cfg.Extent
	}
	return pt
}
