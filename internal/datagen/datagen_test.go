package datagen

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/model"
)

func TestGenNetworkStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := GenNetwork(rng, 10, 12, 50)
	if len(n.Nodes) != 120 {
		t.Fatalf("nodes = %d", len(n.Nodes))
	}
	// Every node has 2..4 neighbours on a grid.
	for i, adj := range n.Adj {
		if len(adj) < 2 || len(adj) > 4 {
			t.Errorf("node %d has %d edges", i, len(adj))
		}
	}
	// Edges are symmetric.
	for a, adj := range n.Adj {
		for _, e := range adj {
			if _, ok := n.EdgeBetween(e.To, int32(a)); !ok {
				t.Errorf("edge %d->%d not symmetric", a, e.To)
			}
		}
	}
	if n.Extent().IsEmpty() {
		t.Error("extent empty")
	}
}

func TestGenNetworkTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("1x5 grid should panic")
		}
	}()
	GenNetwork(rand.New(rand.NewSource(1)), 1, 5, 10)
}

func TestShortestPathConnectsGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := GenNetwork(rng, 8, 8, 100)
	for trial := 0; trial < 50; trial++ {
		a := int32(rng.Intn(len(n.Nodes)))
		b := int32(rng.Intn(len(n.Nodes)))
		p := n.ShortestPath(a, b)
		if len(p) == 0 {
			t.Fatalf("no path %d->%d on a connected grid", a, b)
		}
		if p[0] != a || p[len(p)-1] != b {
			t.Fatalf("path endpoints %v for %d->%d", p, a, b)
		}
		// Consecutive nodes must be adjacent.
		for i := 1; i < len(p); i++ {
			if _, ok := n.EdgeBetween(p[i-1], p[i]); !ok {
				t.Fatalf("path step %d->%d not an edge", p[i-1], p[i])
			}
		}
	}
	if p := n.ShortestPath(3, 3); len(p) != 1 || p[0] != 3 {
		t.Errorf("self path = %v", p)
	}
}

func TestShortestPathPrefersFastRoads(t *testing.T) {
	// Time-optimal routing must never be slower than hop-count routing on
	// locals only; sanity-check by cost comparison of the returned path.
	rng := rand.New(rand.NewSource(3))
	n := GenNetwork(rng, 12, 12, 100)
	cost := func(p []int32) float64 {
		total := 0.0
		for i := 1; i < len(p); i++ {
			e, _ := n.EdgeBetween(p[i-1], p[i])
			total += e.Dist / e.Class.Speed()
		}
		return total
	}
	// Dijkstra optimality spot-check against brute force on a small set.
	src, dst := int32(0), int32(len(n.Nodes)-1)
	p := n.ShortestPath(src, dst)
	if len(p) < 2 {
		t.Fatal("no path across the grid")
	}
	direct := cost(p)
	// Any single random walk must cost at least as much.
	for trial := 0; trial < 10; trial++ {
		q := randomWalk(rng, n, src, dst, 500)
		if q != nil && cost(q) < direct-1e-9 {
			t.Fatalf("random walk cheaper than Dijkstra: %.3f < %.3f", cost(q), direct)
		}
	}
}

func randomWalk(rng *rand.Rand, n *Network, src, dst int32, maxSteps int) []int32 {
	path := []int32{src}
	at := src
	for i := 0; i < maxSteps; i++ {
		adj := n.Adj[at]
		e := adj[rng.Intn(len(adj))]
		at = e.To
		path = append(path, at)
		if at == dst {
			return path
		}
	}
	return nil
}

func simulators(seed int64) []Simulator {
	return []Simulator{
		NewBrinkhoff(DefaultBrinkhoff(seed, 100)),
		NewHub(DefaultGeoLife(seed, 100)),
		NewHub(DefaultTaxi(seed, 100)),
		NewPlanted(DefaultPlanted(seed)),
	}
}

func TestSimulatorsBasicContract(t *testing.T) {
	for _, sim := range simulators(7) {
		snaps := Snapshots(sim, 50)
		if len(snaps) != 50 {
			t.Fatalf("%s: %d snapshots", sim.Name(), len(snaps))
		}
		ext := sim.Extent()
		// Allow a margin: scattered planted members can exceed the extent.
		margin := (ext.MaxX - ext.MinX) * 0.2
		for i, s := range snaps {
			if s.Tick != model.Tick(i+1) {
				t.Errorf("%s: snapshot %d tick %d", sim.Name(), i, s.Tick)
			}
			if s.Len() == 0 {
				t.Errorf("%s: empty snapshot %d", sim.Name(), i)
			}
			if s.Len() > sim.Objects() {
				t.Errorf("%s: %d locations for %d objects", sim.Name(), s.Len(), sim.Objects())
			}
			seen := map[model.ObjectID]bool{}
			for j, id := range s.Objects {
				if seen[id] {
					t.Fatalf("%s: duplicate object %d in snapshot %d", sim.Name(), id, i)
				}
				seen[id] = true
				p := s.Locs[j]
				if p.X < ext.MinX-margin || p.X > ext.MaxX+margin ||
					p.Y < ext.MinY-margin || p.Y > ext.MaxY+margin {
					t.Fatalf("%s: location %v far outside extent %v", sim.Name(), p, ext)
				}
			}
		}
	}
}

func TestSimulatorsDeterministic(t *testing.T) {
	for i := range simulators(9) {
		a := Snapshots(simulators(9)[i], 20)
		b := Snapshots(simulators(9)[i], 20)
		for k := range a {
			if a[k].Len() != b[k].Len() {
				t.Fatalf("sim %d snapshot %d: %d vs %d locations",
					i, k, a[k].Len(), b[k].Len())
			}
			for j := range a[k].Locs {
				if a[k].Locs[j] != b[k].Locs[j] || a[k].Objects[j] != b[k].Objects[j] {
					t.Fatalf("sim %d snapshot %d diverges at %d", i, k, j)
				}
			}
		}
	}
}

func TestObjectsMove(t *testing.T) {
	for _, sim := range simulators(11) {
		snaps := Snapshots(sim, 30)
		first := map[model.ObjectID]geo.Point{}
		for j, id := range snaps[0].Objects {
			first[id] = snaps[0].Locs[j]
		}
		moved := 0
		last := snaps[len(snaps)-1]
		for j, id := range last.Objects {
			if p, ok := first[id]; ok && p.Dist(last.Locs[j], geo.L2) > 1 {
				moved++
			}
		}
		if moved < last.Len()/2 {
			t.Errorf("%s: only %d of %d objects moved", sim.Name(), moved, last.Len())
		}
	}
}

func TestRecordsChainLastTicks(t *testing.T) {
	sim := NewBrinkhoff(DefaultBrinkhoff(5, 50))
	snaps := Snapshots(sim, 40)
	recs := Records(snaps)
	lastSeen := map[model.ObjectID]model.Tick{}
	for _, r := range recs {
		want, ok := lastSeen[r.Object]
		if !ok {
			want = model.NoLastTime
		}
		if r.LastTick != want {
			t.Fatalf("object %d at tick %d: lastTick %d, want %d",
				r.Object, r.Tick, r.LastTick, want)
		}
		lastSeen[r.Object] = r.Tick
	}
}

func TestPlantedGroupsStayWithinEps(t *testing.T) {
	cfg := DefaultPlanted(13)
	cfg.GapLen = 0 // continuous co-movement
	p := NewPlanted(cfg)
	snaps := Snapshots(p, 60)
	for _, s := range snaps {
		locs := map[model.ObjectID]geo.Point{}
		for j, id := range s.Objects {
			locs[id] = s.Locs[j]
		}
		for g := 0; g < cfg.NumGroups; g++ {
			members := p.GroupMembers(g)
			for i := 1; i < len(members); i++ {
				a, b := locs[members[0]], locs[members[i]]
				if a.Dist(b, geo.L1) > cfg.Eps {
					t.Fatalf("group %d members %v apart at tick %d",
						g, a.Dist(b, geo.L1), s.Tick)
				}
			}
		}
	}
}

func TestSubsampleObjects(t *testing.T) {
	sim := NewPlanted(DefaultPlanted(3))
	snaps := Snapshots(sim, 10)
	total := sim.Objects()
	half := SubsampleObjects(snaps, total, 0.5)
	for i, s := range half {
		if s.Tick != snaps[i].Tick {
			t.Errorf("tick mismatch at %d", i)
		}
		for _, id := range s.Objects {
			if int(id) > total/2 {
				t.Fatalf("object %d kept above ratio cut %d", id, total/2)
			}
		}
		if s.Len() >= snaps[i].Len() {
			t.Errorf("snapshot %d not reduced: %d >= %d", i, s.Len(), snaps[i].Len())
		}
	}
	// Ratio 1.0 keeps everything.
	full := SubsampleObjects(snaps, total, 1.0)
	for i := range full {
		if full[i].Len() != snaps[i].Len() {
			t.Errorf("ratio 1.0 altered snapshot %d", i)
		}
	}
}
