// Package netsrc provides network transport for trajectory streams: a TCP
// server that ingests records from many concurrent publishers (one
// connection per sensor gateway, say) and a client for publishing. The
// wire format is the TRJ1 binary framing of package trajio.
//
// The server forwards every record to a single handler; ordering is
// preserved per connection (TCP FIFO), and cross-connection synchronization
// is exactly what the pipeline's last-time snapshot assembly handles.
package netsrc

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"repro/internal/trajio"
)

// Handler consumes one record from the network.
type Handler func(trajio.Rec)

// Server ingests record streams over TCP.
type Server struct {
	ln      net.Listener
	handler Handler
	logf    func(format string, args ...any)

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve listens on addr (e.g. "127.0.0.1:7077") and dispatches records to
// handler until Close. It returns once the listener is ready; accept and
// read loops run in background goroutines.
func Serve(addr string, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("netsrc: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsrc: %w", err)
	}
	s := &Server{
		ln:      ln,
		handler: handler,
		logf:    log.Printf,
		conns:   make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listener address ("127.0.0.1:PORT").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetLogf overrides the error logger (tests silence it).
func (s *Server) SetLogf(f func(string, ...any)) { s.logf = f }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.readLoop(conn)
	}
}

func (s *Server) readLoop(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r, err := trajio.NewBinReader(conn)
	if err != nil {
		s.logf("netsrc: %v: %v", conn.RemoteAddr(), err)
		return
	}
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			if !s.isClosed() {
				s.logf("netsrc: %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.handler(rec)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops accepting, closes all connections, and waits for the read
// loops to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Publisher streams records to a server.
type Publisher struct {
	conn net.Conn
	w    *trajio.BinWriter
}

// Dial connects to a netsrc server.
func Dial(addr string) (*Publisher, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsrc: %w", err)
	}
	w, err := trajio.NewBinWriter(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &Publisher{conn: conn, w: w}, nil
}

// Publish sends one record (buffered; call Flush or Close to push).
func (p *Publisher) Publish(rec trajio.Rec) error { return p.w.Write(rec) }

// Flush pushes buffered records to the socket.
func (p *Publisher) Flush() error { return p.w.Flush() }

// Close flushes and closes the connection.
func (p *Publisher) Close() error {
	ferr := p.w.Flush()
	cerr := p.conn.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
