package netsrc

import (
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/stream"
	"repro/internal/trajio"
)

// AssemblingHandler bridges network ingestion to snapshot assembly: the
// returned Handler reconstructs each object's last-time chain (Section 4),
// drops stale duplicates, stamps ingest time, and pushes records through
// asm, invoking push for every snapshot that becomes complete. It is safe
// for the server's concurrent read loops.
//
// The returned flush drains the assembler at end of stream (after
// Server.Close) and must be called exactly once.
func AssemblingHandler(asm *stream.Assembler, push func(*model.Snapshot)) (h Handler, flush func()) {
	var (
		mu   sync.Mutex
		last = make(map[model.ObjectID]model.Tick)
		buf  []*model.Snapshot
	)
	h = func(r trajio.Rec) {
		mu.Lock()
		defer mu.Unlock()
		lt, ok := last[r.Object]
		if ok && r.Tick <= lt {
			return // duplicate or stale
		}
		if !ok {
			lt = model.NoLastTime
		}
		last[r.Object] = r.Tick
		buf = asm.Push(model.StampedRecord{
			Object:   r.Object,
			Loc:      r.Loc,
			Tick:     r.Tick,
			LastTick: lt,
			Ingest:   time.Now(),
		}, buf[:0])
		for _, s := range buf {
			push(s)
		}
	}
	flush = func() {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range asm.FlushAll(nil) {
			push(s)
		}
	}
	return h, flush
}
