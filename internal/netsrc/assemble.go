package netsrc

import (
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/stream"
	"repro/internal/trajio"
)

// AssemblingHandler bridges network ingestion to snapshot assembly: the
// returned Handler reconstructs each object's last-time chain (Section 4),
// drops stale duplicates, stamps ingest time, and pushes records through
// asm, invoking push for every snapshot that becomes complete. It is safe
// for the server's concurrent read loops.
//
// The returned flush drains the assembler at end of stream (after
// Server.Close) and must be called exactly once.
func AssemblingHandler(asm *stream.Assembler, push func(*model.Snapshot)) (h Handler, flush func()) {
	var (
		mu   sync.Mutex
		last = make(map[model.ObjectID]model.Tick)
		buf  []*model.Snapshot
	)
	h = func(r trajio.Rec) {
		mu.Lock()
		defer mu.Unlock()
		lt, ok := last[r.Object]
		if ok && r.Tick <= lt {
			return // duplicate or stale
		}
		if !ok {
			lt = model.NoLastTime
		}
		last[r.Object] = r.Tick
		buf = asm.Push(model.StampedRecord{
			Object:   r.Object,
			Loc:      r.Loc,
			Tick:     r.Tick,
			LastTick: lt,
			Ingest:   time.Now(),
		}, buf[:0])
		for _, s := range buf {
			push(s)
		}
	}
	flush = func() {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range asm.FlushAll(nil) {
			push(s)
		}
	}
	return h, flush
}

// RecordHandler bridges network ingestion to a partitioned source layer
// (core.Config.SourcePartitions > 0): every record is forwarded raw to
// push — typically core.Pipeline.PushRecord — and the last-time tracking,
// deduplication and coverage assembly all happen inside the dataflow's
// source partitions. The handler is stateless, so any number of publisher
// connections feed one job concurrently, and after a crash recovery each
// publisher simply replays its stream: the restored partition state drops
// what the checkpoint already absorbed.
func RecordHandler(push func(model.ObjectID, geo.Point, model.Tick)) Handler {
	return func(r trajio.Rec) { push(r.Object, r.Loc, r.Tick) }
}
