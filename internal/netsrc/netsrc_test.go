package netsrc

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/trajio"
)

func silent(string, ...any) {}

func TestPublishAndReceive(t *testing.T) {
	var mu sync.Mutex
	var got []trajio.Rec
	s, err := Serve("127.0.0.1:0", func(r trajio.Rec) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogf(silent)
	defer s.Close()

	p, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	want := []trajio.Rec{
		{Object: 1, Tick: 1, Loc: geo.Point{X: 1, Y: 2}},
		{Object: 2, Tick: 1, Loc: geo.Point{X: 3, Y: 4}},
		{Object: 1, Tick: 2, Loc: geo.Point{X: 5, Y: 6}},
	}
	for _, r := range want {
		if err := p.Publish(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == len(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d records", n, len(want))
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestMultiplePublishers(t *testing.T) {
	var count int64
	s, err := Serve("127.0.0.1:0", func(trajio.Rec) {
		atomic.AddInt64(&count, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogf(silent)
	defer s.Close()

	const pubs, each = 5, 200
	var wg sync.WaitGroup
	for g := 0; g < pubs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < each; i++ {
				_ = p.Publish(trajio.Rec{
					Object: model.ObjectID(g*1000 + i),
					Tick:   model.Tick(i),
					Loc:    geo.Point{X: float64(g), Y: float64(i)},
				})
			}
			if err := p.Close(); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt64(&count) < pubs*each {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d", count, pubs*each)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerCloseUnblocks(t *testing.T) {
	s, err := Serve("127.0.0.1:0", func(trajio.Rec) {})
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogf(silent)
	p, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_ = p.Publish(trajio.Rec{Object: 1, Tick: 1})
	_ = p.Flush()
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
	// Double close is a no-op.
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	p.Close()
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestServeNilHandler(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestGarbageConnectionIgnored(t *testing.T) {
	var count int64
	s, err := Serve("127.0.0.1:0", func(trajio.Rec) { atomic.AddInt64(&count, 1) })
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogf(silent)
	defer s.Close()
	// A connection with a bad magic must be dropped without crashing.
	p, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_ = p.Publish(trajio.Rec{Object: 7, Tick: 1})
	_ = p.Close()

	conn, err := netDial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write([]byte("GARBAGE STREAM"))
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt64(&count) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("valid record not delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// netDial is a raw TCP dial helper for malformed-stream tests.
func netDial(addr string) (interface {
	Write([]byte) (int, error)
	Close() error
}, error) {
	return net.Dial("tcp", addr)
}
