package netsrc_test

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/enum"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/netsrc"
	"repro/internal/stream"
	"repro/internal/trajio"
)

// End-to-end network ingest: concurrent publishers stream TRJ1 frames to a
// netsrc server whose handler assembles snapshots (last-time protocol) and
// feeds the full detector pipeline. The planted groups must be recovered at
// the far end, and no snapshot may be lost on the way.
func TestNetworkIngestToPatterns(t *testing.T) {
	const ticks = 120
	gen := datagen.DefaultPlanted(4242)
	gen.NumGroups = 3
	gen.GroupSize = 5
	gen.NumNoise = 20
	sim := datagen.NewPlanted(gen)
	snaps := datagen.Snapshots(sim, ticks)

	cfg := core.Config{
		Constraints: model.Constraints{M: 4, K: 6, L: 3, G: 3},
		Eps:         gen.Eps,
		CellWidth:   gen.Eps * 4,
		Metric:      geo.L1,
		MinPts:      4,
		Enum:        core.FBA,
		Parallelism: 3,
		// Collect pattern object sets; witnesses depend on assembly order
		// only through cluster indices, so assert on recovered groups.
		CollectPatterns: true,
	}
	pipe, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pipe.Start()

	// The ingest path is cmd/icpe serve()'s: netsrc.AssemblingHandler
	// (last-time chains + snapshot assembly) feeding the pipeline; the
	// test additionally counts records and snapshots as they pass.
	var pushed, received atomic.Int64
	asm := stream.NewAssembler()
	handler, flush := netsrc.AssemblingHandler(asm, func(s *model.Snapshot) {
		pushed.Add(1)
		pipe.PushSnapshot(s)
	})
	srv, err := netsrc.Serve("127.0.0.1:0", func(r trajio.Rec) {
		received.Add(1)
		handler(r)
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(func(string, ...any) {})

	// Three publishers, each owning a disjoint object slice, advance in
	// tick lockstep paced on server-side progress — like rate-paced sensor
	// gateways, the next tick is not emitted until the current one has been
	// ingested. (Without pacing, one connection's read loop can sprint
	// through its whole buffered stream before the others start, and the
	// assembler would rightly release snapshots without the laggards.)
	const nPubs = 3
	pubs := make([]*netsrc.Publisher, nPubs)
	for i := range pubs {
		if pubs[i], err = netsrc.Dial(srv.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	sent := 0
	deadline := time.Now().Add(30 * time.Second)
	for _, s := range snaps {
		var wg sync.WaitGroup
		for p := 0; p < nPubs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i, id := range s.Objects {
					if int(id)%nPubs != p {
						continue
					}
					if err := pubs[p].Publish(trajio.Rec{
						Object: id, Tick: s.Tick, Loc: s.Locs[i],
					}); err != nil {
						t.Errorf("publish: %v", err)
						return
					}
				}
				if err := pubs[p].Flush(); err != nil {
					t.Errorf("flush: %v", err)
				}
			}(p)
		}
		wg.Wait()
		sent += s.Len()
		for received.Load() < int64(sent) {
			if time.Now().After(deadline) {
				t.Fatalf("tick %d: received %d of %d records before deadline",
					s.Tick, received.Load(), sent)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for _, p := range pubs {
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	flush()

	res := pipe.Finish()
	if n := pushed.Load(); n != ticks {
		t.Errorf("assembled %d snapshots, want %d", n, ticks)
	}
	if res.Metrics.Snapshots != int64(ticks) {
		t.Errorf("pipeline consumed %d snapshots, want %d", res.Metrics.Snapshots, ticks)
	}
	found := enum.ObjectSets(res.Patterns)
	for g := 0; g < gen.NumGroups; g++ {
		members := sim.GroupMembers(g)
		key := model.Pattern{Objects: members}.Key()
		if !found[key] {
			t.Errorf("planted group %d (%v) not detected over the network path; %d patterns",
				g, members, len(res.Patterns))
		}
	}
}

// sortedPatternsCSV canonicalizes patterns for byte comparison.
func sortedPatternsCSV(t *testing.T, ps []model.Pattern) []byte {
	t.Helper()
	enum.SortPatterns(ps)
	var buf bytes.Buffer
	if err := trajio.WritePatternsCSV(&buf, ps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Multi-feed ingestion into the partitioned source layer: two publishers,
// each owning a disjoint object slice, stream TRJ1 frames over real TCP
// sockets into one job whose source stage runs two partitions. The handler
// is the stateless RecordHandler — no host-side assembler — and the sorted
// pattern output must be byte-identical to the single-driver snapshot path.
func TestMultiPublisherPartitionedSource(t *testing.T) {
	const ticks = 120
	makeWorkload := func() (*datagen.Planted, []*model.Snapshot, core.Config) {
		gen := datagen.DefaultPlanted(4242)
		gen.NumGroups = 3
		gen.GroupSize = 5
		gen.NumNoise = 20
		sim := datagen.NewPlanted(gen)
		snaps := datagen.Snapshots(sim, ticks)
		return sim, snaps, core.Config{
			Constraints:     model.Constraints{M: 4, K: 6, L: 3, G: 3},
			Eps:             gen.Eps,
			CellWidth:       gen.Eps * 4,
			Metric:          geo.L1,
			MinPts:          4,
			Enum:            core.FBA,
			Parallelism:     3,
			CollectPatterns: true,
		}
	}

	// Oracle: the same stream through the single-driver snapshot path.
	_, snaps, cfg := makeWorkload()
	ref, err := core.RunSnapshots(cfg, snaps)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Patterns) == 0 {
		t.Fatal("oracle found no patterns; weak test")
	}
	want := sortedPatternsCSV(t, ref.Patterns)

	_, snaps2, cfg2 := makeWorkload()
	cfg2.SourcePartitions = 2
	pipe, err := core.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	pipe.Start()

	var received atomic.Int64
	handler := netsrc.RecordHandler(pipe.PushRecord)
	srv, err := netsrc.Serve("127.0.0.1:0", func(r trajio.Rec) {
		received.Add(1)
		handler(r)
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(func(string, ...any) {})

	// Two publisher feeds in tick lockstep (rate-paced gateways); the
	// publisher split (object id parity) is deliberately different from the
	// source sharding (key groups), so both partitions receive records from
	// both connections.
	const nPubs = 2
	pubs := make([]*netsrc.Publisher, nPubs)
	for i := range pubs {
		if pubs[i], err = netsrc.Dial(srv.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	sent := 0
	deadline := time.Now().Add(30 * time.Second)
	for _, s := range snaps2 {
		var wg sync.WaitGroup
		for p := 0; p < nPubs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i, id := range s.Objects {
					if int(id)%nPubs != p {
						continue
					}
					if err := pubs[p].Publish(trajio.Rec{
						Object: id, Tick: s.Tick, Loc: s.Locs[i],
					}); err != nil {
						t.Errorf("publish: %v", err)
						return
					}
				}
				if err := pubs[p].Flush(); err != nil {
					t.Errorf("flush: %v", err)
				}
			}(p)
		}
		wg.Wait()
		sent += s.Len()
		for received.Load() < int64(sent) {
			if time.Now().After(deadline) {
				t.Fatalf("tick %d: received %d of %d records before deadline",
					s.Tick, received.Load(), sent)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for _, p := range pubs {
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	res := pipe.Finish()
	if res.Metrics.Snapshots != int64(ticks) {
		t.Errorf("assembled %d snapshots, want %d", res.Metrics.Snapshots, ticks)
	}
	if got := sortedPatternsCSV(t, res.Patterns); !bytes.Equal(got, want) {
		t.Errorf("multi-publisher partitioned output differs: %d patterns, want %d",
			len(res.Patterns), len(ref.Patterns))
	}
}
