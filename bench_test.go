package icpe

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 7). Each iteration regenerates the experiment at reduced scale;
// run `go test -bench=. -benchmem` for the quick pass or `go run
// ./cmd/bench` for the full sweeps. EXPERIMENTS.md records paper-vs-
// measured shapes.

import (
	"io"
	"testing"

	"repro/internal/bench"
)

// benchScale keeps testing.B iterations short; cmd/bench uses FullScale.
var benchScale = bench.SmallScale

func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table2(io.Discard, 42, benchScale)
	}
}

func BenchmarkFig10ClusteringVsEps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig10(io.Discard, 42, benchScale)
	}
}

func BenchmarkFig11ClusteringVsCellWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig11(io.Discard, 42, benchScale)
	}
}

func BenchmarkFig12DetectionVsObjectRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig12(io.Discard, 42, benchScale)
	}
}

func BenchmarkFig13DetectionVsEps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig13(io.Discard, 42, benchScale)
	}
}

func BenchmarkFig14DetectionVsNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig14(io.Discard, 42, benchScale)
	}
}

func BenchmarkFig15EnumerationVsConstraints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig15(io.Discard, 42, benchScale)
	}
}

func BenchmarkAblationLemmas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Ablation(io.Discard, 42, benchScale)
	}
}
