// Package icpe is a from-scratch Go implementation of ICPE — the real-time
// distributed co-movement pattern detection framework of Chen, Gao, Fang,
// Miao, Jensen and Guo, "Real-time Distributed Co-Movement Pattern
// Detection on Streaming Trajectories", PVLDB 12(10), 2019.
//
// A co-movement pattern CP(M, K, L, G) is a group of at least M objects
// that share a density-based (DBSCAN) cluster for at least K discrete
// timestamps, in consecutive runs of at least L, with gaps of at most G
// between runs. The Detector consumes a stream of GPS records (or
// pre-built snapshots), clusters every snapshot with a GR-index-based
// range join, and enumerates patterns with bit-compressed, candidate-based
// enumeration — all on a pipelined parallel dataflow that stands in for
// the paper's Flink cluster.
//
// # Quick start
//
//	det, err := icpe.New(icpe.Options{
//	    M: 5, K: 180, L: 30, G: 30,
//	    Eps: 10, MinPts: 10,
//	    Interval: time.Second,
//	})
//	...
//	det.Push(icpe.Record{Object: 42, Loc: icpe.Point{X: x, Y: y}, Time: t})
//	...
//	result := det.Close()
//	for _, p := range result.Patterns { fmt.Println(p) }
//
// See the examples directory for runnable end-to-end programs and
// EXPERIMENTS.md for the benchmark suite reproducing the paper's
// evaluation.
package icpe

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/stream"
)

// Re-exported domain types. The internal packages define the canonical
// versions; these aliases are the public surface.
type (
	// ObjectID identifies one moving object.
	ObjectID = model.ObjectID
	// Tick is a discretized time index.
	Tick = model.Tick
	// Point is a planar location.
	Point = geo.Point
	// Record is a raw GPS record (object, location, wall-clock time).
	Record = model.Record
	// Snapshot is the set of object locations at one tick.
	Snapshot = model.Snapshot
	// Pattern is a detected co-movement pattern: the object set and the
	// witnessing time sequence.
	Pattern = model.Pattern
	// Metric selects the distance function.
	Metric = geo.Metric
)

// Distance metrics.
const (
	L1   = geo.L1
	L2   = geo.L2
	LInf = geo.LInf
)

// Enumeration methods.
const (
	// MethodFBA (fixed-length bit compression) has the lowest pattern
	// latency; the paper recommends it when throughput suffices.
	MethodFBA = core.FBA
	// MethodVBA (variable-length bit compression) has the highest
	// throughput and reports maximal pattern time sequences.
	MethodVBA = core.VBA
	// MethodBA is the exponential baseline; useful for validation only.
	MethodBA = core.BA
)

// Clustering engines.
const (
	ClusterRJC = core.RJC
	ClusterSRJ = core.SRJ
	ClusterGDC = core.GDC
)

// Options configures a Detector. Zero values get sensible defaults where
// noted; M, K, L, G and Eps are mandatory.
type Options struct {
	// M is the minimum group size (significance), >= 2.
	M int
	// K is the minimum total co-movement duration in ticks.
	K int
	// L is the minimum length of each consecutive run.
	L int
	// G is the maximum gap between consecutive runs.
	G int

	// Eps is the DBSCAN distance threshold.
	Eps float64
	// MinPts is the DBSCAN density threshold (default 10).
	MinPts int
	// Metric is the distance function (default L1, as in the paper).
	Metric Metric
	// CellWidth is the grid cell width lg (default 4*Eps).
	CellWidth float64

	// Interval is the time-discretization width for Push (default 1s).
	Interval time.Duration
	// Origin anchors tick 0 (default: time of the first record).
	Origin time.Time
	// Slack delays snapshot release to absorb out-of-order records, in
	// ticks (default 0).
	Slack int

	// Method selects the enumerator (default MethodFBA).
	Method core.EnumMethod
	// Cluster selects the range-join engine (default ClusterRJC).
	Cluster core.ClusterMethod
	// Parallelism is the per-stage subtask count (default 4). A deployment
	// knob: results are identical at any value, and a checkpointed run may
	// resume at a different one.
	Parallelism int
	// MaxParallelism is the key-group count (default 128): the upper bound
	// on Parallelism and the granularity keyed state is checkpointed at.
	// It must stay fixed for the lifetime of a checkpointed job (it is
	// part of the checkpoint's config fingerprint), while Parallelism may
	// change across CheckpointResume.
	MaxParallelism int
	// SourcePartitions moves ingestion into the dataflow: Push-fed records
	// are routed by object id to this many parallel source partitions
	// (each with its own last-time tracker and coverage watermark) and
	// snapshots are assembled by a keyed stage instead of on the caller's
	// goroutine. 0 keeps the classic host-side assembly. Like
	// MaxParallelism it is part of a checkpointed job's identity and must
	// stay fixed across CheckpointResume; PushSnapshot is unavailable in
	// this mode.
	SourcePartitions int
	// Incremental switches the pipeline to cross-tick delta maintenance:
	// allocate diffs each snapshot against the previous positions, the
	// range join keeps persistent per-cell indexes, and clustering is
	// maintained incrementally — identical results, with per-tick work
	// proportional to how many objects moved rather than to the full
	// population. Requires ClusterRJC and SourcePartitions == 0. Like
	// MaxParallelism it is part of a checkpointed job's identity.
	Incremental bool
	// Nodes simulates a cluster of this many nodes (0 = uncapped).
	Nodes int
	// SlotsPerNode is the per-node slot count (default 2).
	SlotsPerNode int
	// ExchangeBatch is the record batch size on the keyed exchanges between
	// pipeline stages (default 32); negative values ship record-at-a-time.
	// Results are identical either way — batches are sealed on every
	// watermark — only the exchange overhead changes.
	ExchangeBatch int
	// Transport overrides the exchange fabric between pipeline subtasks
	// (default: in-process bounded channels). The transport must provide
	// receivable endpoints for every stage — this Detector runs all stages
	// in the current process. Multi-process deployments (the tcpnet
	// transport, where stages live in other processes) are driven through
	// cmd/icpe's coordinator/worker mode or core.NewDistributed/RunWorker
	// instead.
	Transport flow.Transport

	// CollectPatterns stores all patterns in the final Result (default
	// true; disable for unbounded streams and use OnPattern instead).
	CollectPatterns *bool
	// OnPattern receives each pattern as soon as it is detected.
	OnPattern func(Pattern)

	// CheckpointDir enables aligned-barrier checkpointing of all operator
	// state into this directory; with CheckpointResume set, the detector
	// restores from the latest completed checkpoint and reports the ticks
	// to skip via Detector.ResumeTick. See ARCHITECTURE.md for the
	// checkpoint cut, recovery sequence, and store layout.
	CheckpointDir string
	// CheckpointInterval is the barrier cadence in snapshots — with
	// SourcePartitions > 0, in stream ticks, which is the same cadence
	// (default 32 when CheckpointDir is set).
	CheckpointInterval int
	// CheckpointResume restores from the latest completed checkpoint in
	// CheckpointDir before processing (fresh start when none exists).
	CheckpointResume bool
	// CheckpointAsync takes snapshot encoding and the store upload off
	// the processing path: subtasks capture cheap references at the
	// barrier and a background goroutine encodes and persists them.
	CheckpointAsync bool
	// CheckpointDelta cuts incremental checkpoints — after the first full
	// cut, each checkpoint persists only the key groups touched since the
	// previous completed one, chained to its base. Restore is unchanged
	// (the store replays the chain transparently).
	CheckpointDelta bool
	// CheckpointCompact is the delta-chain length that triggers background
	// compaction into a new full base (0 uses the store default; requires
	// CheckpointDelta).
	CheckpointCompact int
	// CheckpointPaged stores each checkpoint's state in a single paged
	// blob file instead of one flat file, exercising the page-allocator
	// layout (fixed-size pages + free list).
	CheckpointPaged bool

	// MetricsAddr, when non-empty, serves Prometheus text-format metrics
	// (/metrics), health endpoints (/healthz, /readyz) and pprof for this
	// detector on the given address (use "127.0.0.1:0" for an ephemeral
	// port and read it back with Detector.MetricsAddr). A pure deployment
	// knob: it affects neither results nor checkpoint identity.
	MetricsAddr string
	// EventLog, when set, receives the structured event log — one JSON
	// object per line (checkpoint cuts/completions, restores, rescales,
	// compactions). The writer is not closed by Detector.Close.
	EventLog io.Writer
}

// Result summarizes a finished detection run.
type Result struct {
	// Patterns holds the detected patterns (when collection is enabled).
	Patterns []Pattern
	// Stats carries the performance measurements of the run.
	Stats Stats
}

// Stats are the run's performance measurements.
type Stats struct {
	// Snapshots processed and patterns emitted.
	Snapshots, Patterns int64
	// MeanLatency is the average per-snapshot completion latency.
	MeanLatency time.Duration
	// MeanClusterLatency is the clustering share of the latency.
	MeanClusterLatency time.Duration
	// MeanPatternLatency is the average delay from a pattern's first
	// witness tick to its report.
	MeanPatternLatency time.Duration
	// Throughput is snapshots per second.
	Throughput float64
	// AvgClusterSize is the mean DBSCAN cluster cardinality.
	AvgClusterSize float64
}

// Detector is a streaming co-movement pattern detector.
type Detector struct {
	opts     Options
	pipe     *core.Pipeline
	disc     *stream.Discretizer
	asm      *stream.Assembler
	buf      []*model.Snapshot
	now      func() time.Time
	anchored bool
	obsSrv   *obs.Server
}

// New builds and starts a Detector.
func New(opts Options) (*Detector, error) {
	collect := true
	if opts.CollectPatterns != nil {
		collect = *opts.CollectPatterns
	}
	cfg := core.Config{
		Constraints: model.Constraints{
			M: opts.M, K: opts.K, L: opts.L, G: opts.G,
		},
		Eps:              opts.Eps,
		CellWidth:        opts.CellWidth,
		Metric:           opts.Metric,
		MinPts:           opts.MinPts,
		Cluster:          opts.Cluster,
		Enum:             opts.Method,
		Nodes:            opts.Nodes,
		SlotsPerNode:     opts.SlotsPerNode,
		Parallelism:      opts.Parallelism,
		MaxParallelism:   opts.MaxParallelism,
		SourcePartitions: opts.SourcePartitions,
		Incremental:      opts.Incremental,
		ExchangeBatch:    opts.ExchangeBatch,
		Transport:        opts.Transport,
		CollectPatterns:  collect,
		OnPattern:        opts.OnPattern,
	}
	if opts.SourcePartitions > 0 {
		// In partitioned mode the out-of-order slack lives in the source
		// partitions; in classic mode it tunes only the host-side assembler
		// and must stay out of the config (and checkpoint fingerprint).
		cfg.SourceSlack = model.Tick(opts.Slack)
	}
	if opts.CheckpointDir != "" {
		cfg.CheckpointDir = opts.CheckpointDir
		cfg.CheckpointInterval = opts.CheckpointInterval
		if cfg.CheckpointInterval <= 0 {
			cfg.CheckpointInterval = 32
		}
		cfg.Resume = opts.CheckpointResume
		cfg.CheckpointAsync = opts.CheckpointAsync
		cfg.CheckpointDelta = opts.CheckpointDelta
		cfg.CheckpointCompact = opts.CheckpointCompact
		cfg.CheckpointPaged = opts.CheckpointPaged
	} else if opts.CheckpointResume {
		// Silently starting fresh would make the caller replay its source
		// from the beginning and duplicate all output.
		return nil, fmt.Errorf("icpe: CheckpointResume requires CheckpointDir")
	} else if opts.CheckpointAsync || opts.CheckpointDelta || opts.CheckpointPaged || opts.CheckpointCompact != 0 {
		return nil, fmt.Errorf("icpe: checkpoint tuning options require CheckpointDir")
	}
	var obsSrv *obs.Server
	if opts.MetricsAddr != "" {
		cfg.Obs = obs.NewRegistry()
		var err error
		if obsSrv, err = obs.NewServer(opts.MetricsAddr, cfg.Obs); err != nil {
			return nil, fmt.Errorf("icpe: %w", err)
		}
	}
	if opts.EventLog != nil {
		cfg.Events = events.New(opts.EventLog)
	}
	pipe, err := core.New(cfg)
	if err != nil {
		if obsSrv != nil {
			obsSrv.Close()
		}
		return nil, fmt.Errorf("icpe: %w", err)
	}
	d := &Detector{opts: opts, pipe: pipe, now: time.Now, obsSrv: obsSrv}
	interval := opts.Interval
	if interval <= 0 {
		interval = time.Second
	}
	d.anchored = !opts.Origin.IsZero()
	d.disc = stream.NewDiscretizer(opts.Origin, interval)
	if opts.SourcePartitions <= 0 {
		// Classic mode: snapshots are assembled on the caller's goroutine.
		// (With a partitioned source, assembly happens inside the dataflow
		// and the restored source-partition state handles replay dedup.)
		d.asm = stream.NewAssembler()
		d.asm.Slack = model.Tick(opts.Slack)
		if pos, ok := pipe.ResumePosition(); ok {
			// Replayed records at or below the checkpoint cut are dropped;
			// the restored operator state already accounts for them.
			d.asm.ResumeAt(pos.LastTick + 1)
		}
	}
	pipe.Start()
	if d.obsSrv != nil {
		d.obsSrv.SetReady(true)
	}
	return d, nil
}

// MetricsAddr reports the bound address of the metrics server, or "" when
// Options.MetricsAddr was empty. Useful with an ephemeral ":0" port.
func (d *Detector) MetricsAddr() string {
	if d.obsSrv == nil {
		return ""
	}
	return d.obsSrv.Addr()
}

// ResumeTick reports the last tick covered by the checkpoint this
// detector resumed from: sources replaying pre-built snapshots should
// skip ticks at or below it (Push-fed raw records are dropped
// automatically). ok is false when the run did not resume.
func (d *Detector) ResumeTick() (Tick, bool) {
	pos, ok := d.pipe.ResumePosition()
	return pos.LastTick, ok
}

// Push ingests one raw GPS record. Records may arrive out of order within
// the configured slack; duplicates within one tick are dropped.
func (d *Detector) Push(r Record) {
	if !d.anchored {
		// No explicit origin: anchor tick 0 at the first record.
		d.disc = stream.NewDiscretizer(r.Time, d.interval())
		d.anchored = true
	}
	if d.asm == nil {
		// Partitioned source: time discretization happens here (a pure
		// function of the origin and interval); last-time tracking, dedup
		// and assembly run inside the dataflow's source partitions.
		d.pipe.PushRecord(r.Object, r.Loc, d.disc.Tick(r.Time))
		return
	}
	sr, ok := d.disc.Discretize(r, d.now())
	if !ok {
		return
	}
	d.buf = d.asm.Push(sr, d.buf[:0])
	for _, s := range d.buf {
		d.pipe.PushSnapshot(s)
	}
}

func (d *Detector) interval() time.Duration {
	if d.opts.Interval > 0 {
		return d.opts.Interval
	}
	return time.Second
}

// PushSnapshot bypasses discretization and assembly, feeding a pre-built
// snapshot (ticks must increase strictly). Unavailable (panics) with
// SourcePartitions > 0 — records are the unit of partitioned ingestion.
func (d *Detector) PushSnapshot(s *Snapshot) {
	d.pipe.PushSnapshot(s)
}

// Close flushes pending snapshots and all enumerator state, stops the
// pipeline, and returns the result.
func (d *Detector) Close() Result {
	if d.asm != nil {
		for _, s := range d.asm.FlushAll(nil) {
			d.pipe.PushSnapshot(s)
		}
	}
	res := d.pipe.Finish()
	if d.obsSrv != nil {
		// Shut the endpoint down after the drain so a final scrape during
		// Close still sees the pipeline's terminal counters.
		d.obsSrv.SetReady(false)
		d.obsSrv.Close()
		d.obsSrv = nil
	}
	rep := res.Metrics.Report()
	return Result{
		Patterns: res.Patterns,
		Stats: Stats{
			Snapshots:          rep.Snapshots,
			Patterns:           rep.Patterns,
			MeanLatency:        rep.LatencyMean,
			MeanClusterLatency: res.Metrics.ClusterLatency.Mean(),
			MeanPatternLatency: res.Metrics.PatternLatency.Mean(),
			Throughput:         rep.ThroughputPerSec,
			AvgClusterSize:     rep.AvgClusterSize,
		},
	}
}
